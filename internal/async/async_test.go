package async

import (
	"errors"
	"testing"
)

// echoProc decides on the first payload it receives and halts after
// echoing it back to the sender.
type echoProc struct{}

func (echoProc) Start(env *Env) {}
func (echoProc) Deliver(env *Env, m Message) {
	env.Send(m.From, m.Payload)
	env.Decide(m.Payload)
	env.Halt()
}

// initiatorProc sends "ping" to everyone on start, decides when it hears
// any reply.
type initiatorProc struct{ decidedOn any }

func (p *initiatorProc) Start(env *Env) {
	for i := 0; i < env.N(); i++ {
		if PID(i) != env.Self() {
			env.Send(PID(i), "ping")
		}
	}
}
func (p *initiatorProc) Deliver(env *Env, m Message) {
	env.Decide(m.Payload)
	env.Halt()
}

func TestPingPongRoundRobin(t *testing.T) {
	procs := []Process{&initiatorProc{}, echoProc{}, echoProc{}}
	rt, err := New(Config{Procs: procs, Scheduler: &RoundRobinScheduler{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if res.Moves[0] != "ping" {
		t.Fatalf("initiator decided %v, want ping", res.Moves[0])
	}
	if res.Moves[1] != "ping" || res.Moves[2] != "ping" {
		t.Fatalf("echoers decided %v, %v", res.Moves[1], res.Moves[2])
	}
	if res.Stats.MessagesSent != 4 { // 2 pings + 2 echoes
		t.Fatalf("MessagesSent = %d, want 4", res.Stats.MessagesSent)
	}
}

func TestPingPongAllSchedulers(t *testing.T) {
	scheds := map[string]func() Scheduler{
		"random":     func() Scheduler { return NewRandomScheduler(7) },
		"roundrobin": func() Scheduler { return &RoundRobinScheduler{} },
		"fifo":       func() Scheduler { return FIFOScheduler{} },
		"delay": func() Scheduler {
			return &DelayScheduler{Base: FIFOScheduler{}, Slow: map[PID]bool{1: true}}
		},
	}
	for name, mk := range scheds {
		t.Run(name, func(t *testing.T) {
			procs := []Process{&initiatorProc{}, echoProc{}, echoProc{}}
			rt, err := New(Config{Procs: procs, Scheduler: mk(), Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Moves[0] != "ping" {
				t.Fatalf("initiator decided %v", res.Moves[0])
			}
		})
	}
}

// silentProc never decides or halts: it waits forever for a message that
// never comes, modelling the deadlocked player of the AH-wills discussion.
type silentProc struct{}

func (silentProc) Start(env *Env)              { env.SetWill("punish") }
func (silentProc) Deliver(env *Env, m Message) {}

func TestDeadlockAndWills(t *testing.T) {
	procs := []Process{silentProc{}, silentProc{}}
	rt, err := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock")
	}
	for p := PID(0); p < 2; p++ {
		mv, ok := res.MoveOrWill(p)
		if !ok || mv != "punish" {
			t.Fatalf("player %d: MoveOrWill = %v, %v; want punish", p, mv, ok)
		}
	}
}

func TestMoveBeatsWill(t *testing.T) {
	// A decided move takes precedence over a will.
	procs := []Process{&initiatorProc{}, echoProc{}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 4})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mv, ok := res.MoveOrWill(0); !ok || mv != "ping" {
		t.Fatalf("MoveOrWill = %v, %v", mv, ok)
	}
	if _, ok := res.MoveOrWill(5); ok {
		t.Fatal("MoveOrWill for unknown player should be missing")
	}
}

func TestDecideOnlyOnce(t *testing.T) {
	procs := []Process{&doubleDecider{}, &sender{to: 0, payloads: []any{"a", "b"}}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 5})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves[0] != "a" {
		t.Fatalf("move = %v, want first decision a", res.Moves[0])
	}
}

type doubleDecider struct{}

func (*doubleDecider) Start(env *Env) {}
func (*doubleDecider) Deliver(env *Env, m Message) {
	env.Decide(m.Payload)
}

type sender struct {
	to       PID
	payloads []any
}

func (s *sender) Start(env *Env) {
	for _, p := range s.payloads {
		env.Send(s.to, p)
	}
	env.Halt()
}
func (s *sender) Deliver(env *Env, m Message) {}

func TestSeqNumbersAndBatches(t *testing.T) {
	var entries []TraceEntry
	procs := []Process{&doubleDecider{}, &sender{to: 0, payloads: []any{"a", "b"}}}
	rt, _ := New(Config{
		Procs:     procs,
		Scheduler: FIFOScheduler{},
		Seed:      6,
		Trace:     func(te TraceEntry) { entries = append(entries, te) },
	})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var sent []MsgMeta
	for _, te := range entries {
		sent = append(sent, te.Sent...)
	}
	if len(sent) != 2 {
		t.Fatalf("sent %d messages, want 2", len(sent))
	}
	if sent[0].Seq != 0 || sent[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d; want 0,1", sent[0].Seq, sent[1].Seq)
	}
	if sent[0].Batch != sent[1].Batch {
		t.Fatal("messages from one activation must share a batch")
	}
}

func TestMaxStepsLivelockGuard(t *testing.T) {
	// Two processes ping each other forever.
	procs := []Process{&forever{peer: 1}, &forever{peer: 0}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 7, MaxSteps: 500})
	_, err := rt.Run()
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

type forever struct{ peer PID }

func (f *forever) Start(env *Env)              { env.Send(f.peer, "x") }
func (f *forever) Deliver(env *Env, m Message) { env.Send(f.peer, "x") }

func TestUnfairStopRejected(t *testing.T) {
	// A non-relaxed scheduler stopping with undelivered messages is an error.
	procs := []Process{&sender{to: 1, payloads: []any{"x"}}, &doubleDecider{}}
	sched := &StallScheduler{
		Base:    FIFOScheduler{},
		Trigger: func(v *View) bool { return len(v.Pending) > 0 },
	}
	rt, _ := New(Config{Procs: procs, Scheduler: sched, Seed: 8})
	_, err := rt.Run()
	if !errors.Is(err, ErrUnfairStop) {
		t.Fatalf("err = %v, want ErrUnfairStop", err)
	}
}

func TestRelaxedStallProducesDeadlock(t *testing.T) {
	procs := []Process{&sender{to: 1, payloads: []any{"x"}}, &doubleDecider{}}
	sched := &StallScheduler{
		Base:    FIFOScheduler{},
		Trigger: func(v *View) bool { return len(v.Pending) > 0 },
	}
	rt, _ := New(Config{Procs: procs, Scheduler: sched, Seed: 9, Relaxed: true})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock: player 1 never received its message")
	}
}

func TestDropNotAllowedUnrelaxed(t *testing.T) {
	procs := []Process{&sender{to: 1, payloads: []any{"x"}}, &doubleDecider{}}
	script := &ScriptScheduler{Script: []Event{
		{Player: 0}, // start sender; it emits batch 1
		{Player: 1, DropBatches: []BatchKey{{From: 0, Batch: 1}}},
	}}
	rt, _ := New(Config{Procs: procs, Scheduler: script, Seed: 10})
	_, err := rt.Run()
	if !errors.Is(err, ErrDropNotAllowed) {
		t.Fatalf("err = %v, want ErrDropNotAllowed", err)
	}
}

func TestDropBatchAtomic(t *testing.T) {
	// Batch with one message already delivered cannot be dropped
	// (all-or-none rule, Section 5).
	procs := []Process{&sender{to: 1, payloads: []any{"x", "y"}}, &doubleDecider{}}
	// sender's Start is its first activation => batch 1 holds both messages.
	script := &ScriptScheduler{Script: []Event{
		{Player: 0},
	}}
	rt, _ := New(Config{Procs: procs, Scheduler: &firstThenDrop{inner: script}, Seed: 11, Relaxed: true})
	_, err := rt.Run()
	if !errors.Is(err, ErrBadEvent) {
		t.Fatalf("err = %v, want ErrBadEvent (partial batch drop)", err)
	}
}

// firstThenDrop starts the sender, delivers the first message, then tries
// to drop the (now partially delivered) batch.
type firstThenDrop struct {
	inner *ScriptScheduler
	phase int
}

func (s *firstThenDrop) Next(v *View) (Event, bool) {
	switch s.phase {
	case 0:
		s.phase++
		return Event{Player: 0}, true // sender start: emits batch 1
	case 1:
		s.phase++
		return Event{Player: 1, Deliver: []MsgID{v.Pending[0].ID}}, true
	case 2:
		s.phase++
		return Event{Player: 1, DropBatches: []BatchKey{{From: 0, Batch: 1}}}, true
	default:
		return Event{}, false
	}
}

func TestDropSchedulerDropsMediatorStop(t *testing.T) {
	// Drop everything player 0 sends: recipient deadlocks.
	procs := []Process{&sender{to: 1, payloads: []any{"stop"}}, &doubleDecider{}}
	sched := &DropScheduler{
		Base:       FIFOScheduler{},
		ShouldDrop: func(m MsgMeta) bool { return m.From == 0 },
	}
	rt, _ := New(Config{Procs: procs, Scheduler: sched, Seed: 12, Relaxed: true})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock after dropping the only message")
	}
	if res.Stats.MessagesDropped != 1 {
		t.Fatalf("MessagesDropped = %d, want 1", res.Stats.MessagesDropped)
	}
}

func TestHaltedProcessGetsNoDeliveries(t *testing.T) {
	procs := []Process{&haltOnStart{}, &sender{to: 0, payloads: []any{"late"}}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 13})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Moves[0]; ok {
		t.Fatal("halted process should not have decided")
	}
}

type haltOnStart struct{}

func (*haltOnStart) Start(env *Env)              { env.Halt() }
func (*haltOnStart) Deliver(env *Env, m Message) { env.Decide(m.Payload) }

func TestSendToInvalidPIDIgnored(t *testing.T) {
	procs := []Process{&sender{to: 99, payloads: []any{"x"}}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 14})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{Procs: []Process{echoProc{}}}); err == nil {
		t.Error("missing scheduler should fail")
	}
	if _, err := New(Config{Procs: []Process{echoProc{}}, Scheduler: FIFOScheduler{}, Players: 5}); err == nil {
		t.Error("Players > len(Procs) should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		procs := []Process{&initiatorProc{}, echoProc{}, echoProc{}}
		rt, _ := New(Config{Procs: procs, Scheduler: NewRandomScheduler(42), Seed: 42})
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats.Steps != b.Stats.Steps || a.Stats.MessagesSent != b.Stats.MessagesSent {
		t.Fatal("runs with identical seeds diverged")
	}
}

func TestAuxiliaryPlayersExcludedFromDeadlock(t *testing.T) {
	// Process 1 is an auxiliary (mediator-like): it never decides, but the
	// run is not deadlocked because all real players decided.
	procs := []Process{&initiatorProc{}, echoProc{}}
	rt, _ := New(Config{Procs: procs, Players: 1, Scheduler: FIFOScheduler{}, Seed: 15})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("auxiliary non-decision must not count as deadlock")
	}
}

func TestBroadcast(t *testing.T) {
	procs := []Process{&broadcaster{}, &doubleDecider{}, &doubleDecider{}, &doubleDecider{}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 16})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p := PID(1); p <= 3; p++ {
		if res.Moves[p] != "hello" {
			t.Fatalf("player %d decided %v", p, res.Moves[p])
		}
	}
}

type broadcaster struct{}

func (*broadcaster) Start(env *Env) {
	env.Broadcast("hello")
	env.Halt()
}
func (*broadcaster) Deliver(env *Env, m Message) {}
