package async

import (
	"sync"
	"testing"
)

// TestRemoteConcurrentDecide hammers one Remote from many goroutines —
// the situation a wire transport creates when connection readers race —
// and asserts the game-layer invariants hold: exactly the first Decide
// sticks, wills are last-writer-wins, and Halted is monotonic.
func TestRemoteConcurrentDecide(t *testing.T) {
	const goroutines = 32
	var sendMu sync.Mutex
	var sent []any
	r := NewRemote(0, 4, 4, 1, func(to PID, payload any) {
		sendMu.Lock()
		sent = append(sent, payload)
		sendMu.Unlock()
	})
	env := r.Env()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			env.Decide(g)
			env.SetWill(g + 100)
			env.Send(PID(g%4), g)
			if !env.HasDecided() {
				t.Error("HasDecided false after Decide")
			}
		}()
	}
	wg.Wait()

	mv, ok := r.Move()
	if !ok {
		t.Fatal("no move recorded")
	}
	first := mv.(int)
	if first < 0 || first >= goroutines {
		t.Fatalf("move %v not among submitted", mv)
	}
	// The move must not change once set.
	env.Decide(first + 1000)
	if mv2, _ := r.Move(); mv2 != mv {
		t.Fatalf("move changed from %v to %v", mv, mv2)
	}
	w, ok := r.Will()
	if !ok {
		t.Fatal("no will recorded")
	}
	if wi := w.(int); wi < 100 || wi >= 100+goroutines {
		t.Fatalf("will %v not among submitted", w)
	}
	sendMu.Lock()
	gotSends := len(sent)
	sendMu.Unlock()
	if gotSends != goroutines {
		t.Fatalf("transport saw %d sends, want %d", gotSends, goroutines)
	}
	if r.Halted() {
		t.Fatal("halted without Halt")
	}
}

// TestRemoteConcurrentDeliveryDrivesProcess runs a Process on a Remote
// while concurrent goroutines deliver messages and poll lifecycle state,
// mirroring a transport's reader goroutines racing a status poller. Run
// with -race, this is the regression net for the mesh's thread model.
func TestRemoteConcurrentDeliveryDrivesProcess(t *testing.T) {
	const senders, perSender = 8, 50
	r := NewRemote(0, senders+1, senders+1, 7, func(to PID, payload any) {})
	env := r.Env()

	// A counting process: halts after seeing every expected message.
	// Deliver is serialized by the counter's own mutex — the Remote's
	// contract is that IT is safe under concurrency; the process guards
	// its own state, as wire.Node does by pumping from one goroutine.
	var mu sync.Mutex
	seen := 0
	deliver := func(msg Message) {
		mu.Lock()
		seen++
		done := seen == senders*perSender
		mu.Unlock()
		if done {
			env.Decide("all")
			env.Halt()
		}
	}

	var pollWG sync.WaitGroup
	stop := make(chan struct{})
	pollWG.Add(1)
	go func() { // status poller racing the deliverers
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Halted()
				_, _ = r.Move()
				_, _ = r.Will()
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				deliver(Message{From: PID(s + 1), To: 0, Seq: i, Payload: i})
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	if !r.Halted() {
		t.Fatal("process did not halt")
	}
	if mv, ok := r.Move(); !ok || mv != "all" {
		t.Fatalf("move %v, %v", mv, ok)
	}
}

// TestRemoteEnvSurface checks the Env bookkeeping a compiled player
// observes on a Remote backend.
func TestRemoteEnvSurface(t *testing.T) {
	r := NewRemote(2, 5, 4, 3, nil)
	env := r.Env()
	if env.Self() != 2 || env.N() != 5 || env.Players() != 4 {
		t.Fatalf("surface: self=%d n=%d players=%d", env.Self(), env.N(), env.Players())
	}
	if env.Rand() == nil {
		t.Fatal("nil rng")
	}
	env.Send(1, "dropped") // nil send function must not panic
	env.Halt()
	if !r.Halted() {
		t.Fatal("halt not recorded")
	}
}
