package async

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chatterProc sends a configurable number of messages to random peers on
// start and relays a few on delivery, then halts — a randomized workload
// for conservation-law checks.
type chatterProc struct {
	fanout int
	relays int
	sent   int
}

func (c *chatterProc) Start(env *Env) {
	for i := 0; i < c.fanout; i++ {
		env.Send(PID(env.Rand().Intn(env.N())), "m")
	}
}

func (c *chatterProc) Deliver(env *Env, m Message) {
	if c.sent < c.relays {
		c.sent++
		env.Send(PID(env.Rand().Intn(env.N())), "r")
		return
	}
	env.Decide("done")
	env.Halt()
}

// TestConservationLaw checks, across randomized topologies and schedules,
// that every sent message is accounted for: delivered, dropped (to halted
// recipients), or still pending at quiescence is impossible for fair
// schedulers (the runtime ends only when nothing deliverable remains).
func TestConservationLaw(t *testing.T) {
	prop := func(seed int64, nRaw uint8, fanRaw, relayRaw uint8) bool {
		n := 2 + int(nRaw%5)
		fan := 1 + int(fanRaw%4)
		relays := int(relayRaw % 3)
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &chatterProc{fanout: fan, relays: relays}
		}
		rt, err := New(Config{Procs: procs, Scheduler: NewRandomScheduler(seed), Seed: seed})
		if err != nil {
			return false
		}
		res, err := rt.Run()
		if err != nil {
			return false
		}
		s := res.Stats
		// Delivered + dropped never exceeds sent; whatever remains was
		// addressed to halted processes (counted as neither).
		return s.MessagesDelivered+s.MessagesDropped <= s.MessagesSent
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// TestSeqNumbersMonotone checks per-pair sequence numbers are gapless and
// increasing in every trace, for random runs.
func TestSeqNumbersMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rec := &TraceRecorder{}
		procs := []Process{
			&chatterProc{fanout: 3, relays: 2},
			&chatterProc{fanout: 2, relays: 1},
			&chatterProc{fanout: 1, relays: 3},
		}
		rt, err := New(Config{Procs: procs, Scheduler: NewRandomScheduler(seed), Seed: seed, Trace: rec.Record})
		if err != nil {
			return false
		}
		if _, err := rt.Run(); err != nil {
			return false
		}
		next := map[[2]PID]int{}
		for _, m := range rec.Sent() {
			key := [2]PID{m.From, m.To}
			if m.Seq != next[key] {
				return false
			}
			next[key]++
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

// TestDeliveredSubsetOfSent: every delivered message id was previously
// sent, across random runs (no phantom deliveries).
func TestDeliveredSubsetOfSent(t *testing.T) {
	prop := func(seed int64) bool {
		rec := &TraceRecorder{}
		procs := []Process{
			&chatterProc{fanout: 2, relays: 2},
			&chatterProc{fanout: 2, relays: 2},
			&chatterProc{fanout: 2, relays: 2},
			&chatterProc{fanout: 2, relays: 2},
		}
		rt, err := New(Config{Procs: procs, Scheduler: NewRandomScheduler(seed), Seed: seed, Trace: rec.Record})
		if err != nil {
			return false
		}
		if _, err := rt.Run(); err != nil {
			return false
		}
		sent := map[MsgID]bool{}
		for _, m := range rec.Sent() {
			sent[m.ID] = true
		}
		for _, m := range rec.Delivered() {
			if !sent[m.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}
