package async

import (
	"strings"
	"testing"
)

func TestTraceRecorder(t *testing.T) {
	rec := &TraceRecorder{}
	procs := []Process{&initiatorProc{}, echoProc{}, echoProc{}}
	rt, err := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 1, Trace: rec.Record})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sent()) != res.Stats.MessagesSent {
		t.Fatalf("trace sent %d, stats %d", len(rec.Sent()), res.Stats.MessagesSent)
	}
	if len(rec.Delivered()) != res.Stats.MessagesDelivered {
		t.Fatalf("trace delivered %d, stats %d", len(rec.Delivered()), res.Stats.MessagesDelivered)
	}
	pc := rec.PairCounts()
	if pc[[2]PID{0, 1}] != 1 || pc[[2]PID{0, 2}] != 1 {
		t.Fatalf("pair counts %v", pc)
	}
	if rec.MaxInFlight() < 1 {
		t.Fatal("max in flight should be at least 1")
	}
	tl := rec.Timeline(100)
	if !strings.Contains(tl, "p0! >1,2") {
		t.Fatalf("timeline missing initiator start:\n%s", tl)
	}
}

func TestTimelineLimit(t *testing.T) {
	rec := &TraceRecorder{}
	procs := []Process{&initiatorProc{}, echoProc{}, echoProc{}}
	rt, _ := New(Config{Procs: procs, Scheduler: FIFOScheduler{}, Seed: 2, Trace: rec.Record})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline(1)
	if !strings.Contains(tl, "more steps") {
		t.Fatalf("limit marker missing:\n%s", tl)
	}
}
