//go:build unix

package obs

import (
	"syscall"
	"time"
)

// CPUTime returns the process's cumulative CPU time (user + system).
// Sampled before and after a play, the delta is the play's approximate
// CPU cost — approximate because concurrent plays share the process.
func CPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
