package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are one atomic
// add; reads happen only at scrape time.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is a linear
// scan over the bounds plus two atomics — no locks.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf
	count  atomic.Int64
	sum    Gauge
}

// NewHistogram builds an unregistered histogram with the given upper
// bounds (sorted ascending) — for subsystems that window and difference
// their own series rather than exposing them directly.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank, reading each bucket counter
// once. With no samples it returns 0; ranks landing in the overflow
// bucket clamp to the highest finite bound. The estimate is approximate
// by construction — bounded by bucket resolution — which is exactly what
// a gossiped health summary needs.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a point-in-time copy of a Histogram's counters. Two
// snapshots of the same histogram subtract (Sub) into a windowed delta,
// which is how the SLO engine turns cumulative counters into rolling
// windows.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, shared (do not mutate)
	Counts []int64   // one per bound, plus +Inf
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's counters. Each counter is one atomic
// load; concurrent Observes may land between loads, so Count can drift
// from the bucket total by in-flight samples — harmless at window
// granularity.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the delta s − prev: the samples observed between the two
// snapshots. A zero-value prev (fresh window) yields s unchanged.
// Negative per-bucket deltas (mismatched snapshots) clamp to zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		if c < 0 {
			c = 0
		}
		d.Counts[i] = c
	}
	if d.Count < 0 {
		d.Count = 0
	}
	return d
}

// Total sums the bucket counts (the window's sample count).
func (s HistSnapshot) Total() int64 {
	t := int64(0)
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Quantile estimates the q-quantile of the snapshot's samples with the
// same interpolation and edge semantics as Histogram.Quantile.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			break // overflow bucket: clamp below
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (target - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// FractionAbove estimates the fraction of the snapshot's samples that
// exceed x, linearly interpolating within the bucket x falls in. Samples
// in the overflow bucket always count as above any finite x. With no
// samples it returns 0.
func (s HistSnapshot) FractionAbove(x float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	above := int64(0)
	var part float64
	for i, c := range s.Counts {
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			above += c // overflow bucket: above any finite threshold
			continue
		}
		hi := s.Bounds[i]
		switch {
		case x < lo:
			above += c
		case x >= hi:
			// entirely at or below
		default:
			part += float64(c) * (hi - x) / (hi - lo)
		}
	}
	return (float64(above) + part) / float64(total)
}

// metric is one registered series.
type metric struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // pull-time value (wins over counter/gauge)
}

// Registry is an ordered set of named metrics rendered in Prometheus
// text format. Registration takes the registry lock; metric updates
// touch only the metric's own atomics.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m unless the name is taken, returning the winner.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		return prev
	}
	r.metrics = append(r.metrics, m)
	r.byName[m.name] = m
	return m
}

// Counter registers (or returns the existing) counter `name`.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, typ: "counter", counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) gauge `name`.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, typ: "gauge", gauge: &Gauge{}})
	return m.gauge
}

// Histogram registers (or returns the existing) histogram `name` with
// the given upper bounds (sorted ascending).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(&metric{name: name, help: help, typ: "histogram", hist: NewHistogram(bounds)})
	return m.hist
}

// CounterFunc registers a counter whose value is pulled at scrape time
// (for totals owned by another subsystem's own atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge whose value is pulled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", fn: fn})
}

// WritePrometheus renders every metric in registration order in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.typ)
		switch {
		case m.fn != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.counter != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case m.hist != nil:
			cum := int64(0)
			for i, b := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", m.name, formatFloat(b), cum)
			}
			cum += m.hist.counts[len(m.hist.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(m.hist.sum.Value()))
			fmt.Fprintf(w, "%s_count %d\n", m.name, m.hist.count.Load())
		}
	}
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp applies the text exposition format's HELP escaping:
// backslash and newline are the only characters that would corrupt the
// line-oriented format.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}
