//go:build !unix

package obs

import "time"

// CPUTime is unavailable off unix; the CPU-delta sampler degrades to
// zero rather than gating the build on a platform API.
func CPUTime() time.Duration { return 0 }
