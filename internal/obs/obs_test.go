package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDeriveTraceIDStable(t *testing.T) {
	a := DeriveTraceID("s-000001", "42")
	b := DeriveTraceID("s-000001", "42")
	if a != b {
		t.Fatalf("trace id not stable: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("trace id %q not 16 hex chars", a)
	}
	if DeriveTraceID("s-000002", "42") == a {
		t.Fatal("distinct sessions share a trace id")
	}
	// The separator matters: ("ab","c") and ("a","bc") must differ.
	if DeriveTraceID("ab", "c") == DeriveTraceID("a", "bc") {
		t.Fatal("part boundaries not separated")
	}
}

func TestPlayTraceObserveAggregates(t *testing.T) {
	tr := NewPlayTrace("t1", 0)
	tr.Observe("rbc", "local")
	tr.Observe("rbc", "local")
	tr.Observe("ba", "local")
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["rbc"].Count != 2 || byName["ba"].Count != 1 {
		t.Fatalf("counts wrong: %+v", byName)
	}
	if byName["rbc"].EndUS < byName["rbc"].StartUS {
		t.Fatalf("span ends before it starts: %+v", byName["rbc"])
	}
}

func TestPlayTraceBound(t *testing.T) {
	tr := NewPlayTrace("t2", 3)
	tr.Observe("a", "x")
	tr.Observe("b", "x")
	tr.Observe("c", "x")
	tr.Observe("d", "x") // over the bound: dropped
	tr.Observe("a", "x") // existing span: still counted
	if got := len(tr.Snapshot()); got != 3 {
		t.Fatalf("bound leaked: %d spans", got)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	// Merge respects the same bound.
	tr.Merge([]Span{{Name: "e"}, {Name: "f"}})
	if got := len(tr.Snapshot()); got != 3 {
		t.Fatalf("merge leaked past the bound: %d spans", got)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestPlayTraceBeginAndAnnotate(t *testing.T) {
	tr := NewPlayTrace("t3", 0)
	end := tr.Begin("run", "local")
	time.Sleep(time.Millisecond)
	end()
	tr.Annotate("run", "local", "cpu_ms", "1.5")
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans %+v", spans)
	}
	s := spans[0]
	if s.Duration() <= 0 {
		t.Fatalf("run span has no extent: %+v", s)
	}
	if s.Attrs["cpu_ms"] != "1.5" {
		t.Fatalf("attrs %+v", s.Attrs)
	}
}

func TestPlayTraceMergeStitches(t *testing.T) {
	tr := NewPlayTrace("t4", 0)
	tr.Observe("rbc", "local")
	tr.Merge([]Span{{Name: "rbc", Origin: "http://peer", StartUS: 5, EndUS: 9, Count: 3}})
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans %+v", spans)
	}
	origins := map[string]bool{}
	for _, s := range spans {
		origins[s.Origin] = true
	}
	if !origins["local"] || !origins["http://peer"] {
		t.Fatalf("origins %+v", origins)
	}
}

func TestNilPlayTraceIsSafe(t *testing.T) {
	var tr *PlayTrace
	tr.Observe("a", "b")
	tr.Begin("a", "b")()
	tr.Annotate("a", "b", "k", "v")
	tr.Merge([]Span{{Name: "x"}})
	if tr.ID() != "" || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil trace leaked state")
	}
}

func TestPlayTraceConcurrent(t *testing.T) {
	tr := NewPlayTrace("t5", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe("phase", "local")
			}
		}()
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Count != 4000 {
		t.Fatalf("spans %+v", spans)
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(3)
	c.Inc()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(2.5)
	r.GaugeFunc("test_pull", "Pulled.", func() float64 { return 7 })
	h := r.Histogram("test_wait_seconds", "Wait.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 4",
		"# TYPE test_depth gauge",
		"test_depth 2.5",
		"test_pull 7",
		`test_wait_seconds_bucket{le="0.1"} 1`,
		`test_wait_seconds_bucket{le="1"} 2`,
		`test_wait_seconds_bucket{le="+Inf"} 3`,
		"test_wait_seconds_sum 5.55",
		"test_wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicateNamesCoalesce(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "a")
	b := r.Counter("dup_total", "b")
	if a != b {
		t.Fatal("duplicate registration minted a second counter")
	}
	a.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Count(sb.String(), "# TYPE dup_total") != 1 {
		t.Fatalf("duplicate series rendered:\n%s", sb.String())
	}
}

func TestCPUTimeMonotone(t *testing.T) {
	a := CPUTime()
	// Burn a little CPU so the second sample can move.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	b := CPUTime()
	if b < a {
		t.Fatalf("CPU time went backwards: %v -> %v", a, b)
	}
}
