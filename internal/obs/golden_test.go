package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the WritePrometheus golden file")

// TestWritePrometheusGolden pins the full text exposition byte-for-byte:
// registration-order rendering, HELP escaping (backslash, newline),
// non-finite gauge values (NaN, +Inf, -Inf), pull-time funcs, and
// histogram cumulative buckets. A renderer change that is invisible to
// substring assertions — reordered series, altered escaping — fails here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	// Registered deliberately out of alphabetical order: the format must
	// follow registration order, not name order.
	r.Counter("zz_requests_total", "Requests handled.").Add(42)
	r.Gauge("aa_temperature", `Escaping: a back\slash and a
newline must both be escaped.`).Set(36.6)
	nan := r.Gauge("bb_not_a_number", "A gauge holding NaN renders as NaN.")
	nan.Set(math.NaN())
	inf := r.Gauge("cc_infinite", "A gauge holding +Inf renders as +Inf.")
	inf.Set(math.Inf(1))
	ninf := r.Gauge("dd_negative_infinite", "A gauge holding -Inf renders as -Inf.")
	ninf.Set(math.Inf(-1))
	r.CounterFunc("ee_pulled_total", "A pull-time counter.", func() float64 { return 7 })
	r.GaugeFunc("ff_pulled", "A pull-time gauge.", func() float64 { return 0.25 })
	h := r.Histogram("gg_latency_seconds", "A three-bucket histogram.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()

	golden := filepath.Join("testdata", "write_prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with `go test ./internal/obs -run Golden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("WritePrometheus drifted from the golden file; if intentional, rerun with -update\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second render of the same registry is identical.
	var again strings.Builder
	r.WritePrometheus(&again)
	if again.String() != got {
		t.Error("two renders of one registry differ")
	}
}

// TestWritePrometheusHelpEscaping spot-checks the escaped HELP bytes so
// a golden regeneration can't silently bless broken escaping.
func TestWritePrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "line one\nline two with \\ backslash").Set(1)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if want := `# HELP g line one\nline two with \\ backslash`; !strings.Contains(out, want) {
		t.Fatalf("HELP escaping wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 { // HELP, TYPE, value
		t.Fatalf("raw newline leaked into the exposition:\n%q", out)
	}
}
