package obs

import (
	"math"
	"testing"
)

func TestHistSnapshotEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	s := h.Snapshot()
	if s.Total() != 0 || s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if f := s.FractionAbove(1); f != 0 {
		t.Fatalf("empty fraction-above = %v, want 0", f)
	}
	// Subtracting two empty snapshots stays empty.
	d := s.Sub(h.Snapshot())
	if d.Total() != 0 || d.Count != 0 {
		t.Fatalf("empty delta not zero: %+v", d)
	}
	// A zero-value prev (fresh window) yields the snapshot unchanged.
	h.Observe(3)
	d = h.Snapshot().Sub(HistSnapshot{})
	if d.Total() != 1 || d.Count != 1 || d.Sum != 3 {
		t.Fatalf("delta against zero prev: %+v", d)
	}
}

func TestHistSnapshotSingleBucket(t *testing.T) {
	// One finite bound: everything lands in bucket 0 or the overflow.
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(5)
	h.Observe(100) // overflow
	s := h.Snapshot()
	if s.Total() != 3 || s.Count != 3 {
		t.Fatalf("snapshot totals: %+v", s)
	}
	// Median interpolates within [0,10); the p99 rank lands in the
	// overflow bucket and clamps to the highest finite bound.
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("single-bucket median = %v", q)
	}
	if q := s.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %v, want clamp to 10", q)
	}
	// The overflow sample is above any finite threshold.
	if f := s.FractionAbove(10); math.Abs(f-1.0/3.0) > 1e-9 {
		t.Fatalf("fraction above 10 = %v, want 1/3", f)
	}
}

func TestHistSnapshotSubWindows(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	prev := h.Snapshot()
	h.Observe(5)
	h.Observe(50)
	h.Observe(0.5)
	cur := h.Snapshot()
	d := cur.Sub(prev)
	if d.Total() != 3 || d.Count != 3 {
		t.Fatalf("window delta totals: %+v", d)
	}
	// The window holds {0.5, 5, 50}: two of three samples exceed 1.
	if f := d.FractionAbove(1); math.Abs(f-2.0/3.0) > 1e-9 {
		t.Fatalf("window fraction above 1 = %v, want 2/3", f)
	}
	if got, want := d.Sum, 55.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("window sum = %v, want %v", got, want)
	}
	// The cumulative quantile still matches the non-windowed accessor.
	if a, b := h.Quantile(0.9), cur.Quantile(0.9); a != b {
		t.Fatalf("Histogram.Quantile %v != Snapshot().Quantile %v", a, b)
	}
	// Mismatched subtraction clamps instead of going negative.
	neg := prev.Sub(cur)
	if neg.Total() != 0 || neg.Count != 0 {
		t.Fatalf("reverse delta not clamped: %+v", neg)
	}
}
