// Package obs is the zero-dependency observability core of the farm:
// trace ids, monotonic-clock spans aggregated into bounded per-play
// traces, and a lock-cheap registry of counters/gauges/histograms that
// internal/service re-exports in Prometheus text format.
//
// The package deliberately depends on nothing but the standard library,
// and its hot paths (Observe, Counter.Add, Histogram.Observe) are a
// mutex-guarded map hit or a single atomic — cheap enough to leave on
// for every play the farm hosts.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// TraceID identifies one distributed play across every daemon that
// co-hosts it. Ids are derived, not random, so the same session replays
// to the same id.
type TraceID string

// DeriveTraceID derives a stable 16-hex-digit trace id from the given
// parts (typically session id and seed) via FNV-1a.
func DeriveTraceID(parts ...string) TraceID {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return TraceID(fmt.Sprintf("%016x", h.Sum64()))
}

// Span is one named interval on a play's timeline. Protocol phases are
// aggregated spans: StartUS/EndUS bracket the first and last observation
// of the phase and Count tallies how many messages landed in it. Offsets
// are microseconds on the owning origin's monotonic clock, so spans from
// different daemons order within an origin but only approximately across
// origins.
type Span struct {
	// Name is the span's phase or stage name ("rbc", "mpc.mul", "run").
	Name string `json:"name"`
	// Origin is the daemon-side label of where the span was recorded
	// ("local", or the peer address after stitching).
	Origin string `json:"origin,omitempty"`
	// StartUS/EndUS are microseconds since the origin's trace started.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Count is how many observations the span aggregates.
	Count int64 `json:"count"`
	// Attrs carries span attributes (e.g. cpu_ms on the run span).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's extent.
func (s Span) Duration() time.Duration {
	return time.Duration(s.EndUS-s.StartUS) * time.Microsecond
}

// DefaultSpanLimit bounds a play trace when NewPlayTrace is given no
// explicit limit: distinct (name, origin) spans beyond it are dropped
// (and counted), never grown without bound.
const DefaultSpanLimit = 256

// PlayTrace is one session's bounded trace buffer. All methods are
// nil-receiver safe, so a farm with tracing disabled threads a nil
// trace through the same code paths at zero cost.
type PlayTrace struct {
	id    TraceID
	start time.Time
	limit int

	mu      sync.Mutex
	spans   map[spanKey]*Span
	order   []spanKey // first-seen key order
	foreign []Span    // stitched-in spans from other daemons
	dropped int64
}

// NewPlayTrace creates a trace with the given id, bounded to limit
// distinct spans (0: DefaultSpanLimit).
func NewPlayTrace(id TraceID, limit int) *PlayTrace {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &PlayTrace{
		id:    id,
		start: time.Now(),
		limit: limit,
		spans: make(map[spanKey]*Span),
	}
}

// ID returns the trace id ("" on a nil trace).
func (t *PlayTrace) ID() TraceID {
	if t == nil {
		return ""
	}
	return t.id
}

// nowUS is the monotonic offset of "now" on this trace's clock.
func (t *PlayTrace) nowUS() int64 { return time.Since(t.start).Microseconds() }

// NowUS exposes the trace's clock (0 on a nil trace) so external
// collectors can stamp buffered observations on the same timeline.
func (t *PlayTrace) NowUS() int64 {
	if t == nil {
		return 0
	}
	return t.nowUS()
}

// spanKey is the comparable map key of a span. A struct key (rather
// than a concatenated string) keeps the per-message hot path
// allocation-free.
type spanKey struct{ origin, name string }

// get returns the span for (name, origin), creating it if the bound
// allows; nil when the trace is full. Callers hold t.mu.
func (t *PlayTrace) get(name, origin string, at int64) *Span {
	key := spanKey{origin: origin, name: name}
	if s, ok := t.spans[key]; ok {
		return s
	}
	if len(t.spans)+len(t.foreign) >= t.limit {
		t.dropped++
		return nil
	}
	s := &Span{Name: name, Origin: origin, StartUS: at, EndUS: at}
	t.spans[key] = s
	t.order = append(t.order, key)
	return s
}

// Observe records one observation of a phase: the phase span's extent
// widens to now and its count increments. This is the hot path fed by
// per-message classification.
func (t *PlayTrace) Observe(name, origin string) {
	if t == nil {
		return
	}
	now := t.nowUS()
	t.mu.Lock()
	if s := t.get(name, origin, now); s != nil {
		s.EndUS = now
		s.Count++
	}
	t.mu.Unlock()
}

// ObserveN folds n observations into the (name, origin) span at once —
// the cheap alternative to n Observe calls when a counter is known
// after the fact (e.g. the scheduler's step total at the end of a run).
func (t *PlayTrace) ObserveN(name, origin string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	now := t.nowUS()
	t.mu.Lock()
	if s := t.get(name, origin, now); s != nil {
		s.EndUS = now
		s.Count += n
	}
	t.mu.Unlock()
}

// ObserveRange folds n observations spanning [startUS, endUS] of the
// trace's clock into the (name, origin) span — the bulk path for
// collectors that buffer observations lock-free outside the trace and
// fold them in once per run.
func (t *PlayTrace) ObserveRange(name, origin string, n, startUS, endUS int64) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	if s := t.get(name, origin, startUS); s != nil {
		if startUS < s.StartUS {
			s.StartUS = startUS
		}
		if endUS > s.EndUS {
			s.EndUS = endUS
		}
		s.Count += n
	}
	t.mu.Unlock()
}

// Begin opens an explicit span and returns its closer; use it for
// stages with a true start and end (the run itself, move resolution).
func (t *PlayTrace) Begin(name, origin string) func() {
	if t == nil {
		return func() {}
	}
	now := t.nowUS()
	t.mu.Lock()
	s := t.get(name, origin, now)
	if s != nil {
		s.Count++
	}
	t.mu.Unlock()
	return func() {
		if s == nil {
			return
		}
		end := t.nowUS()
		t.mu.Lock()
		s.EndUS = end
		t.mu.Unlock()
	}
}

// Annotate attaches a key=value attribute to the (name, origin) span,
// creating the span if needed and the bound allows.
func (t *PlayTrace) Annotate(name, origin, key, value string) {
	if t == nil {
		return
	}
	now := t.nowUS()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.get(name, origin, now)
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// Merge stitches completed spans from another daemon into this trace
// (the coordinator's finish path). Spans beyond the bound are dropped
// and counted.
func (t *PlayTrace) Merge(spans []Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, s := range spans {
		if len(t.spans)+len(t.foreign) >= t.limit {
			t.dropped += int64(len(spans) - i)
			break
		}
		if s.Attrs != nil {
			attrs := make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				attrs[k] = v
			}
			s.Attrs = attrs
		}
		t.foreign = append(t.foreign, s)
	}
}

// Dropped returns how many observations or spans the bound discarded.
func (t *PlayTrace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns a copy of every span, locally recorded ones first in
// first-seen order, then stitched foreign spans, both sub-sorted by
// start offset within an origin for a stable render.
func (t *PlayTrace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.order)+len(t.foreign))
	for _, key := range t.order {
		s := *t.spans[key]
		if s.Attrs != nil {
			attrs := make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				attrs[k] = v
			}
			s.Attrs = attrs
		}
		out = append(out, s)
	}
	out = append(out, t.foreign...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].StartUS < out[j].StartUS
	})
	return out
}
