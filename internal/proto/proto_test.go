package proto

import (
	"testing"

	"asyncmediator/internal/async"
)

// buildHosts creates n hosts, applies setup to each, and runs them under a
// round-robin scheduler.
func runHosts(t *testing.T, n int, setup func(i int, h *Host)) []*Host {
	t.Helper()
	hosts := make([]*Host, n)
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		hosts[i] = NewHost()
		setup(i, hosts[i])
		procs[i] = hosts[i]
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: &async.RoundRobinScheduler{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return hosts
}

func TestRoutingBetweenInstances(t *testing.T) {
	gotA := make([]any, 3)
	gotB := make([]any, 3)
	runHosts(t, 3, func(i int, h *Host) {
		if err := h.Register("a", &FuncModule{
			OnStart: func(ctx *Ctx) {
				if ctx.Self() == 0 {
					ctx.Broadcast("from-a")
				}
			},
			OnHandle: func(ctx *Ctx, from async.PID, body any) { gotA[i] = body },
		}); err != nil {
			t.Fatal(err)
		}
		if err := h.Register("b", &FuncModule{
			OnStart: func(ctx *Ctx) {
				if ctx.Self() == 1 {
					ctx.Broadcast("from-b")
				}
			},
			OnHandle: func(ctx *Ctx, from async.PID, body any) { gotB[i] = body },
		}); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < 3; i++ {
		if gotA[i] != "from-a" {
			t.Errorf("host %d instance a got %v", i, gotA[i])
		}
		if gotB[i] != "from-b" {
			t.Errorf("host %d instance b got %v", i, gotB[i])
		}
	}
}

func TestBufferingForUnregisteredInstance(t *testing.T) {
	// Party 0 sends to instance "late" that peers spawn only upon a
	// trigger on instance "trigger". Buffered messages must be replayed.
	received := make([]any, 2)
	runHosts(t, 2, func(i int, h *Host) {
		if err := h.Register("trigger", &FuncModule{
			OnStart: func(ctx *Ctx) {
				if ctx.Self() == 0 {
					// Send to "late" BEFORE the peer spawns it, then trigger.
					ctx.SendTo(1, "late", "early-bird")
					ctx.Send(1, "go")
				}
			},
			OnHandle: func(ctx *Ctx, from async.PID, body any) {
				ctx.Spawn("late", &FuncModule{
					OnHandle: func(ctx *Ctx, from async.PID, body any) { received[i] = body },
				})
			},
		}); err != nil {
			t.Fatal(err)
		}
	})
	if received[1] != "early-bird" {
		t.Fatalf("buffered message not replayed: got %v", received[1])
	}
}

func TestSpawnIdempotent(t *testing.T) {
	runHosts(t, 1, func(i int, h *Host) {
		if err := h.Register("root", &FuncModule{
			OnStart: func(ctx *Ctx) {
				m1 := ctx.Spawn("child", &FuncModule{})
				m2 := ctx.Spawn("child", &FuncModule{})
				if m1 != m2 {
					t.Error("Spawn with same id should return existing module")
				}
				if _, ok := ctx.Lookup("child"); !ok {
					t.Error("Lookup failed for spawned child")
				}
				if _, ok := ctx.Lookup("ghost"); ok {
					t.Error("Lookup found nonexistent module")
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDuplicateRegister(t *testing.T) {
	h := NewHost()
	if err := h.Register("x", &FuncModule{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Register("x", &FuncModule{}); err == nil {
		t.Fatal("duplicate Register should fail")
	}
}

func TestNonEnvelopeCounted(t *testing.T) {
	var hosts []*Host
	raw := &rawSender{}
	h := NewHost()
	hosts = append(hosts, h)
	procs := []async.Process{h, raw}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: &async.RoundRobinScheduler{}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if hosts[0].UnknownCount() != 1 {
		t.Fatalf("UnknownCount = %d, want 1", hosts[0].UnknownCount())
	}
}

type rawSender struct{}

func (*rawSender) Start(env *async.Env) {
	env.Send(0, "not an envelope")
	env.Halt()
}
func (*rawSender) Deliver(env *async.Env, m async.Message) {}

func TestOnStartHook(t *testing.T) {
	fired := false
	runHosts(t, 1, func(i int, h *Host) {
		h.OnStart(func(env *async.Env) { fired = true })
	})
	if !fired {
		t.Fatal("OnStart hook not invoked")
	}
}

func TestSelfDeliveryViaBroadcast(t *testing.T) {
	selfGot := false
	runHosts(t, 1, func(i int, h *Host) {
		if err := h.Register("x", &FuncModule{
			OnStart: func(ctx *Ctx) { ctx.Broadcast("hi") },
			OnHandle: func(ctx *Ctx, from async.PID, body any) {
				if from == ctx.Self() {
					selfGot = true
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
	})
	if !selfGot {
		t.Fatal("broadcast must include self")
	}
}
