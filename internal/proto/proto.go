// Package proto provides instance multiplexing for composite protocols.
//
// The cheap-talk protocols of the paper are towers of concurrent
// sub-protocols: one player simultaneously participates in n reliable
// broadcasts, n Byzantine agreements, n^2 AVSS dealings, and so on. Each
// sub-protocol is a Module identified by an instance id; a Host implements
// async.Process and routes incoming messages to the right module.
//
// Asynchrony means messages for an instance routinely arrive before the
// local party has created that instance (e.g. an ECHO for a broadcast whose
// INIT is still in flight). The Host therefore buffers messages addressed
// to unregistered instances and replays them on registration.
//
// Everything a malicious party sends is untrusted: modules must
// type-assert message bodies defensively and ignore garbage.
package proto

import (
	"fmt"
	"math/rand"

	"asyncmediator/internal/async"
)

// Envelope wraps a module message with its instance id. It is the only
// payload type a Host sends or understands.
type Envelope struct {
	Instance string
	Body     any
}

// Module is a sub-protocol instance hosted by a Host.
type Module interface {
	// Start is called once, when the module is registered on a started
	// host (or when the host starts, for modules registered earlier).
	Start(ctx *Ctx)
	// Handle processes one incoming message body from another party's
	// module with the same instance id. Bodies are untrusted.
	Handle(ctx *Ctx, from async.PID, body any)
}

// Ctx is the capability a module uses to interact with the network and
// with its host. A Ctx is only valid during the callback that received it.
type Ctx struct {
	host *Host
	env  *async.Env
	inst string
}

// Self returns this party's id.
func (c *Ctx) Self() async.PID { return c.env.Self() }

// N returns the number of protocol participants (game players).
func (c *Ctx) N() int { return c.env.Players() }

// Rand returns this party's private randomness.
func (c *Ctx) Rand() *rand.Rand { return c.env.Rand() }

// Instance returns the module's own instance id.
func (c *Ctx) Instance() string { return c.inst }

// Send sends body to the same instance at party `to`.
func (c *Ctx) Send(to async.PID, body any) {
	c.env.Send(to, Envelope{Instance: c.inst, Body: body})
}

// SendTo sends body to a *different* instance at party `to`. Used by
// parent modules addressing their children across parties.
func (c *Ctx) SendTo(to async.PID, instance string, body any) {
	c.env.Send(to, Envelope{Instance: instance, Body: body})
}

// Broadcast sends body to the same instance at every participant,
// including self (n point-to-point sends; not atomic).
func (c *Ctx) Broadcast(body any) {
	for p := 0; p < c.N(); p++ {
		c.Send(async.PID(p), body)
	}
}

// Spawn registers a child module under the given absolute instance id and
// starts it (replaying any buffered messages). Spawning an id twice is a
// no-op returning the existing module.
func (c *Ctx) Spawn(instance string, m Module) Module {
	return c.host.spawn(c.env, instance, m)
}

// Lookup returns the module registered under instance, if any.
func (c *Ctx) Lookup(instance string) (Module, bool) {
	m, ok := c.host.modules[instance]
	return m, ok
}

// For returns a Ctx bound to a different instance id, so a parent module
// can invoke a child module's methods (which send under the child's id).
func (c *Ctx) For(instance string) *Ctx {
	return &Ctx{host: c.host, env: c.env, inst: instance}
}

// Env exposes the underlying game environment, for game-level actions
// (Decide, SetWill, Halt) that outlive any single module.
func (c *Ctx) Env() *async.Env { return c.env }

// Host multiplexes modules over one async.Process. The zero value is not
// usable; call NewHost.
type Host struct {
	modules map[string]Module
	buffer  map[string][]buffered
	started bool
	// onStart runs when the host process starts, before any module starts.
	onStart func(env *async.Env)
	// startOrder preserves registration order for deterministic startup.
	startOrder []string
	// unknown counts messages dropped for lack of a module (diagnostics).
	unknown int
}

type buffered struct {
	from async.PID
	body any
}

// NewHost returns an empty Host.
func NewHost() *Host {
	return &Host{
		modules: make(map[string]Module),
		buffer:  make(map[string][]buffered),
	}
}

// Register adds a module before the host starts. Registering after start
// is equivalent to Spawn from a callback.
func (h *Host) Register(instance string, m Module) error {
	if _, dup := h.modules[instance]; dup {
		return fmt.Errorf("proto: duplicate instance %q", instance)
	}
	h.modules[instance] = m
	h.startOrder = append(h.startOrder, instance)
	return nil
}

// OnStart sets a hook invoked when the host process receives the start
// signal, before modules start.
func (h *Host) OnStart(f func(env *async.Env)) { h.onStart = f }

// UnknownCount reports how many message bodies were discarded because no
// module claimed them by the end of the run (malformed or malicious).
func (h *Host) UnknownCount() int { return h.unknown }

// Ctx builds a context bound to the given instance, for host-level code
// (such as OnStart hooks) that needs to call into a module's methods.
func (h *Host) Ctx(env *async.Env, instance string) *Ctx {
	return &Ctx{host: h, env: env, inst: instance}
}

var _ async.Process = (*Host)(nil)

// Start implements async.Process.
func (h *Host) Start(env *async.Env) {
	h.started = true
	if h.onStart != nil {
		h.onStart(env)
	}
	for _, id := range h.startOrder {
		m := h.modules[id]
		m.Start(&Ctx{host: h, env: env, inst: id})
		h.flush(env, id)
	}
}

// Deliver implements async.Process.
func (h *Host) Deliver(env *async.Env, msg async.Message) {
	envlp, ok := msg.Payload.(Envelope)
	if !ok {
		h.unknown++
		return
	}
	m, ok := h.modules[envlp.Instance]
	if !ok {
		// Buffer for a module that may be spawned later.
		h.buffer[envlp.Instance] = append(h.buffer[envlp.Instance],
			buffered{from: msg.From, body: envlp.Body})
		return
	}
	m.Handle(&Ctx{host: h, env: env, inst: envlp.Instance}, msg.From, envlp.Body)
}

func (h *Host) spawn(env *async.Env, instance string, m Module) Module {
	if existing, ok := h.modules[instance]; ok {
		return existing
	}
	h.modules[instance] = m
	h.startOrder = append(h.startOrder, instance)
	if h.started {
		m.Start(&Ctx{host: h, env: env, inst: instance})
		h.flush(env, instance)
	}
	return m
}

func (h *Host) flush(env *async.Env, instance string) {
	// Replay buffered messages; handlers may spawn further modules, whose
	// own buffers are flushed recursively by spawn.
	for {
		pending := h.buffer[instance]
		if len(pending) == 0 {
			return
		}
		delete(h.buffer, instance)
		m := h.modules[instance]
		for _, b := range pending {
			m.Handle(&Ctx{host: h, env: env, inst: instance}, b.from, b.body)
		}
	}
}

// FuncModule adapts plain functions to the Module interface; useful in
// tests and for tiny glue modules.
type FuncModule struct {
	OnStart  func(ctx *Ctx)
	OnHandle func(ctx *Ctx, from async.PID, body any)
}

var _ Module = (*FuncModule)(nil)

// Start implements Module.
func (f *FuncModule) Start(ctx *Ctx) {
	if f.OnStart != nil {
		f.OnStart(ctx)
	}
}

// Handle implements Module.
func (f *FuncModule) Handle(ctx *Ctx, from async.PID, body any) {
	if f.OnHandle != nil {
		f.OnHandle(ctx, from, body)
	}
}
