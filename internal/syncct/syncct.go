// Package syncct implements the synchronous cheap-talk baseline (the
// ADGH/R1 regime the paper compares against): a lockstep round model in
// which every message sent in round r arrives at the start of round r+1,
// and a party that fails to send is *detected* by its silence — the
// capability asynchrony takes away, and the reason the paper's async
// bounds pay an extra k+t.
//
// The baseline protocol implements the same mediator workload as the
// asynchronous experiments (the Section 6.4 lottery: one shared uniform
// bit) with threshold d = k+t at n > 3(k+t) — one full k+t below the
// asynchronous exact bound n > 4(k+t), which is experiment E7's crossover.
//
// Fault model (documented substitution; see DESIGN.md): crashes and stalls
// are tolerated outright (synchrony turns silence into erasures, which
// cost no decoding redundancy), while corrupted shares are *detected* —
// the degree check fails and honest parties abstain rather than output a
// wrong value. Full Byzantine correction in this regime needs the
// accusation/elimination machinery of ADGH's synchronous construction,
// which is out of scope for a baseline.
//
// Rounds:
//
//	R1  every party deals Shamir shares of a random contribution rho_d
//	    and of d zero-mask polynomials (privately, one share per party).
//	R2  every party broadcasts u_j = r_j^2 + z_j, its share of the
//	    masked square of r = sum of contributions.
//	R3  parties decode c = r^2 (degree 2d, up to t wrong/missing),
//	    compute the bit share b_j = (r_j/sqrt(c) + 1)/2 and broadcast it.
//	R4  parties decode b (degree d) and output it.
package syncct

import (
	"fmt"
	"math/rand"

	"asyncmediator/internal/field"
	"asyncmediator/internal/game"
	"asyncmediator/internal/poly"
	"asyncmediator/internal/rs"
	"asyncmediator/internal/shamir"
)

// Message is a synchronous-round message.
type Message struct {
	From, To int
	Payload  any
}

// Process is a lockstep participant: Round consumes the previous round's
// inbox and emits next-round messages.
type Process interface {
	// Round runs round r (starting at 1) with the messages delivered this
	// round and returns the messages to send.
	Round(r int, inbox []Message) []Message
	// Output returns the decided action once available.
	Output() (game.Action, bool)
}

// Run executes processes in lockstep until all non-nil processes have
// output or maxRounds elapse. Nil processes model crashed parties.
func Run(procs []Process, maxRounds int) {
	n := len(procs)
	inboxes := make([][]Message, n)
	for r := 1; r <= maxRounds; r++ {
		next := make([][]Message, n)
		allDone := true
		for i, p := range procs {
			if p == nil {
				continue
			}
			if _, done := p.Output(); !done {
				allDone = false
			}
			for _, m := range p.Round(r, inboxes[i]) {
				if m.To < 0 || m.To >= n {
					continue
				}
				m.From = i
				next[m.To] = append(next[m.To], m)
			}
		}
		if allDone {
			return
		}
		inboxes = next
	}
}

// Payloads.
type (
	// msgDeal carries one party's shares: the rho contribution share and
	// the mask shares w_1..w_d.
	msgDeal struct {
		Rho   field.Element
		Masks []field.Element
	}
	// msgSquare broadcasts u_j = r_j^2 + z_j.
	msgSquare struct{ U field.Element }
	// msgBit broadcasts the bit share.
	msgBit struct{ B field.Element }
)

// LotteryPlayer runs the synchronous lottery protocol.
type LotteryPlayer struct {
	// Self is this party's index; N total parties; D = k+t the threshold.
	Self, N, D int
	// Faults bounds wrong/missing values tolerated at decodings (t).
	Faults int
	Rng    *rand.Rand

	deals   map[int]msgDeal
	rShare  field.Element
	zShare  field.Element
	squares map[int]field.Element
	bits    map[int]field.Element

	out     game.Action
	decided bool
}

var _ Process = (*LotteryPlayer)(nil)

// NewLotteryPlayer constructs a player. d is the privacy threshold k+t;
// faults is the malicious bound t used at decodings.
func NewLotteryPlayer(self, n, d, faults int, rng *rand.Rand) (*LotteryPlayer, error) {
	if n < 2*d+faults+1 {
		// Opening the degree-2d masked square needs 2d+faults+1 agreeing
		// points among n; with d = k+t, faults = t <= d this is exactly
		// n > 3(k+t) ... the R1 bound.
		return nil, fmt.Errorf("syncct: n=%d too small for d=%d faults=%d", n, d, faults)
	}
	return &LotteryPlayer{
		Self: self, N: n, D: d, Faults: faults, Rng: rng,
		deals:   make(map[int]msgDeal),
		squares: make(map[int]field.Element),
		bits:    make(map[int]field.Element),
	}, nil
}

// Output implements Process.
func (p *LotteryPlayer) Output() (game.Action, bool) { return p.out, p.decided }

// Round implements Process.
func (p *LotteryPlayer) Round(r int, inbox []Message) []Message {
	switch r {
	case 1:
		return p.deal()
	case 2:
		p.collectDeals(inbox)
		return p.broadcastSquare()
	case 3:
		p.collectSquares(inbox)
		return p.broadcastBit()
	case 4:
		p.collectBits(inbox)
		p.decodeBit()
	}
	return nil
}

func (p *LotteryPlayer) deal() []Message {
	rho := poly.Random(p.Rng, p.D, field.Rand(p.Rng))
	masks := make([]poly.Poly, p.D)
	for l := range masks {
		masks[l] = poly.Random(p.Rng, p.D, field.Rand(p.Rng))
	}
	out := make([]Message, 0, p.N)
	for j := 0; j < p.N; j++ {
		x := shamir.XOf(j)
		m := msgDeal{Rho: rho.Eval(x), Masks: make([]field.Element, p.D)}
		for l := range masks {
			m.Masks[l] = masks[l].Eval(x)
		}
		out = append(out, Message{To: j, Payload: m})
	}
	return out
}

func (p *LotteryPlayer) collectDeals(inbox []Message) {
	for _, m := range inbox {
		d, ok := m.Payload.(msgDeal)
		if !ok || len(d.Masks) != p.D {
			continue // malformed: synchrony lets us just drop the dealer
		}
		if _, dup := p.deals[m.From]; dup {
			continue
		}
		p.deals[m.From] = d
	}
	// r = sum of contributions from every party heard from; silence is
	// detected here — the synchronous advantage.
	x := shamir.XOf(p.Self)
	var rsh, zsh field.Element
	for _, d := range p.deals {
		rsh = rsh.Add(d.Rho)
		xp := x
		for l := 0; l < p.D; l++ {
			zsh = zsh.Add(xp.Mul(d.Masks[l]))
			xp = xp.Mul(x)
		}
	}
	p.rShare = rsh
	p.zShare = zsh
}

func (p *LotteryPlayer) broadcastSquare() []Message {
	u := p.rShare.Mul(p.rShare).Add(p.zShare)
	out := make([]Message, 0, p.N)
	for j := 0; j < p.N; j++ {
		out = append(out, Message{To: j, Payload: msgSquare{U: u}})
	}
	return out
}

func (p *LotteryPlayer) collectSquares(inbox []Message) {
	for _, m := range inbox {
		s, ok := m.Payload.(msgSquare)
		if !ok {
			continue
		}
		if _, dup := p.squares[m.From]; dup {
			continue
		}
		p.squares[m.From] = s.U
	}
}

func (p *LotteryPlayer) broadcastBit() []Message {
	pts := make([]poly.Point, 0, len(p.squares))
	for j, u := range p.squares {
		pts = append(pts, poly.Point{X: shamir.XOf(j), Y: u})
	}
	sortPoints(pts)
	// Correct wrong shares when redundancy allows, otherwise detect them
	// and abstain.
	sq, ok := rs.OEC(pts, 2*p.D, p.Faults)
	if !ok {
		sq, ok = decodeDetecting(pts, 2*p.D)
	}
	if !ok {
		return nil // corruption detected or too few points: abstain
	}
	c := sq.Constant()
	var bShare field.Element
	if c == 0 {
		bShare = 0
	} else {
		s, isSq := c.Sqrt()
		if !isSq {
			return nil
		}
		inv2 := field.Element(2).Inv()
		bShare = p.rShare.Mul(s.Inv()).Add(1).Mul(inv2)
	}
	out := make([]Message, 0, p.N)
	for j := 0; j < p.N; j++ {
		out = append(out, Message{To: j, Payload: msgBit{B: bShare}})
	}
	return out
}

func (p *LotteryPlayer) collectBits(inbox []Message) {
	for _, m := range inbox {
		b, ok := m.Payload.(msgBit)
		if !ok {
			continue
		}
		if _, dup := p.bits[m.From]; dup {
			continue
		}
		p.bits[m.From] = b.B
	}
}

func (p *LotteryPlayer) decodeBit() {
	pts := make([]poly.Point, 0, len(p.bits))
	for j, b := range p.bits {
		pts = append(pts, poly.Point{X: shamir.XOf(j), Y: b})
	}
	sortPoints(pts)
	// The bit sharing has degree d; with n-crashes >= d+2*faults+1 points
	// we can even correct wrong shares here, so try correction first and
	// fall back to detection.
	bp, ok := rs.OEC(pts, p.D, p.Faults)
	if !ok {
		bp, ok = decodeDetecting(pts, p.D)
	}
	if !ok {
		return
	}
	v := bp.Constant()
	p.decided = true
	switch v {
	case 0:
		p.out = 0
	case 1:
		p.out = 1
	default:
		p.out = game.NoMove
	}
}

// decodeDetecting interpolates through all points and accepts only if the
// result respects the degree bound: erasures are free, corruption is
// detected (never silently accepted).
func decodeDetecting(pts []poly.Point, deg int) (poly.Poly, bool) {
	if len(pts) < deg+1 {
		return nil, false
	}
	p, err := poly.Interpolate(pts)
	if err != nil || p.Degree() > deg {
		return nil, false
	}
	return p, true
}

func sortPoints(pts []poly.Point) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].X < pts[j-1].X; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}
