package syncct

import (
	"math/rand"
	"testing"

	"asyncmediator/internal/field"
	"asyncmediator/internal/game"
	"asyncmediator/internal/shamir"
)

func buildPlayers(t *testing.T, n, d, faults int, seed int64) []Process {
	t.Helper()
	procs := make([]Process, n)
	for i := 0; i < n; i++ {
		p, err := NewLotteryPlayer(i, n, d, faults, rand.New(rand.NewSource(seed*1000+int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	return procs
}

func outputs(procs []Process) []game.Action {
	out := make([]game.Action, 0, len(procs))
	for _, p := range procs {
		if p == nil {
			continue
		}
		if a, ok := p.Output(); ok {
			out = append(out, a)
		} else {
			out = append(out, game.NoMove)
		}
	}
	return out
}

func TestHonestLotteryAtR1Bound(t *testing.T) {
	// n = 3(k+t)+1 with k+t = 1: n = 4 — the synchronous bound, BELOW the
	// asynchronous exact bound of 5.
	seen := map[game.Action]int{}
	for seed := int64(0); seed < 40; seed++ {
		procs := buildPlayers(t, 4, 1, 1, seed)
		Run(procs, 10)
		outs := outputs(procs)
		first := outs[0]
		if first != 0 && first != 1 {
			t.Fatalf("seed %d: output %v", seed, first)
		}
		for _, a := range outs {
			if a != first {
				t.Fatalf("seed %d: disagreement %v", seed, outs)
			}
		}
		seen[first]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("lottery degenerate: %v", seen)
	}
}

func TestCrashTolerated(t *testing.T) {
	// One crashed party (nil process) at n=4, d=1, faults=1.
	for seed := int64(0); seed < 20; seed++ {
		procs := buildPlayers(t, 4, 1, 1, seed)
		procs[2] = nil
		Run(procs, 10)
		outs := outputs(procs)
		first := outs[0]
		if first != 0 && first != 1 {
			t.Fatalf("seed %d: output %v", seed, first)
		}
		for _, a := range outs {
			if a != first {
				t.Fatalf("seed %d: disagreement %v", seed, outs)
			}
		}
	}
}

// wrongShares behaves honestly except that every broadcast share is
// shifted.
type wrongShares struct {
	inner *LotteryPlayer
}

func (w *wrongShares) Output() (game.Action, bool) { return w.inner.Output() }
func (w *wrongShares) Round(r int, inbox []Message) []Message {
	msgs := w.inner.Round(r, inbox)
	for i, m := range msgs {
		switch pl := m.Payload.(type) {
		case msgSquare:
			pl.U = pl.U.Add(9)
			msgs[i].Payload = pl
		case msgBit:
			pl.B = pl.B.Add(9)
			msgs[i].Payload = pl
		}
	}
	return msgs
}

func TestWrongSharesDetectedNeverWrong(t *testing.T) {
	// At n=4, d=1 a corrupted square share cannot be corrected, but it
	// must be DETECTED: honest parties either all abstain or all output
	// the same valid bit — never a wrong/garbage value, and never a split.
	for seed := int64(0); seed < 20; seed++ {
		procs := buildPlayers(t, 4, 1, 1, seed)
		procs[3] = &wrongShares{inner: procs[3].(*LotteryPlayer)}
		Run(procs, 10)
		outs := outputs(procs[:3])
		first := outs[0]
		for _, a := range outs {
			if a != first {
				t.Fatalf("seed %d: honest split %v", seed, outs)
			}
		}
		if first != game.NoMove && first != 0 && first != 1 {
			t.Fatalf("seed %d: invalid output %v", seed, first)
		}
	}
}

func TestWrongSharesCorrectedWithRedundancy(t *testing.T) {
	// With n = 7 >= 2d+2*faults+1 the square opening has enough
	// redundancy to fully correct one wrong share.
	for seed := int64(0); seed < 10; seed++ {
		procs := buildPlayers(t, 7, 1, 1, seed)
		procs[6] = &wrongShares{inner: procs[6].(*LotteryPlayer)}
		Run(procs, 10)
		outs := outputs(procs[:6])
		first := outs[0]
		if first != 0 && first != 1 {
			t.Fatalf("seed %d: output %v", seed, first)
		}
		for _, a := range outs {
			if a != first {
				t.Fatalf("seed %d: disagreement %v", seed, outs)
			}
		}
	}
}

func TestBoundValidation(t *testing.T) {
	// n=3, d=1, faults=1 violates n >= 2d+faults+1 = 4.
	if _, err := NewLotteryPlayer(0, 3, 1, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n=3 should be rejected")
	}
	// The crossover point: sync works at n=4 where async-exact needs 5.
	if _, err := NewLotteryPlayer(0, 4, 1, 1, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("n=4 should be accepted: %v", err)
	}
}

func TestSecrecyShapeOfShares(t *testing.T) {
	// The masked square opening must not reveal the sign of r: check that
	// the opened polynomial u is NOT equal to r(x)^2 (the mask moved the
	// high coefficients) in a direct algebraic simulation.
	rng := rand.New(rand.NewSource(5))
	n, d := 7, 2
	// r and masks dealt honestly.
	rpoly := make([]field.Element, 0)
	_ = rpoly
	shares := make([]field.Element, n)
	zshares := make([]field.Element, n)
	rp := randomPoly(rng, d)
	for j := 0; j < n; j++ {
		shares[j] = rp.eval(shamir.XOf(j))
	}
	masks := make([]*testPoly, d)
	for l := range masks {
		masks[l] = randomPoly(rng, d)
	}
	for j := 0; j < n; j++ {
		x := shamir.XOf(j)
		xp := x
		for l := 0; l < d; l++ {
			zshares[j] = zshares[j].Add(xp.Mul(masks[l].eval(x)))
			xp = xp.Mul(x)
		}
	}
	// u_j = r_j^2 + z_j; reconstruct u and compare constant term with r^2.
	diffSeen := false
	for j := 0; j < n; j++ {
		u := shares[j].Mul(shares[j]).Add(zshares[j])
		want := rp.eval(shamir.XOf(j)).Mul(rp.eval(shamir.XOf(j)))
		if u != want {
			diffSeen = true
		}
	}
	if !diffSeen {
		t.Fatal("mask did not alter the square sharing (sign leak)")
	}
}

// minimal local polynomial helper for the secrecy test.
type testPoly struct{ c []field.Element }

func randomPoly(rng *rand.Rand, d int) *testPoly {
	c := make([]field.Element, d+1)
	for i := range c {
		c[i] = field.Rand(rng)
	}
	return &testPoly{c: c}
}

func (p *testPoly) eval(x field.Element) field.Element {
	var acc field.Element
	for i := len(p.c) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p.c[i])
	}
	return acc
}
