// Package pool is the bounded worker pool shared by the session farm
// (internal/service) and the experiment engine (internal/sim): a fixed
// set of goroutines draining a fixed-depth job queue. Both subsystems
// execute their work — farm sessions, experiment trial shards — through
// this one code path, so concurrency behaviour (queue bounds, drain
// semantics, worker indexing) is defined exactly once.
//
// Each worker carries its index so downstream consumers can shard state
// per worker (the farm's stats sink keys its lock-free counter shards on
// it).
package pool

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull signals saturation on a non-blocking submit; callers
// surface backpressure to their clients and may retry after backoff.
var ErrQueueFull = errors.New("pool: queue full")

// ErrClosed marks a submit to a pool that is draining or drained.
var ErrClosed = errors.New("pool: closed")

// Job is one unit of work. The argument is the index of the worker
// executing it, in [0, Workers()).
type Job func(worker int)

// Pool is a bounded worker pool.
type Pool struct {
	jobs    chan Job
	workers int
	wg      sync.WaitGroup

	// mu is a reader/writer guard on the closed flag: submitters hold the
	// read side across their channel send so Close (the writer) cannot
	// close the job channel underneath an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// New starts `workers` goroutines with a queue of depth `queue`.
// Non-positive arguments are clamped to 1.
func New(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{jobs: make(chan Job, queue), workers: workers}
	for w := 0; w < workers; w++ {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j(w)
			}
		}()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueLen reports how many jobs are queued behind the workers right
// now — the input of the farm's load-shedding readiness gate.
func (p *Pool) QueueLen() int { return len(p.jobs) }

// TrySubmit enqueues a job without blocking. It returns ErrQueueFull when
// the queue is at capacity (saturation: the caller owns backoff) and
// ErrClosed after Close.
func (p *Pool) TrySubmit(j Job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return fmt.Errorf("%w (%d jobs pending)", ErrQueueFull, cap(p.jobs))
	}
}

// Submit enqueues a job, blocking while the queue is full. It only errors
// (ErrClosed) once the pool is shut down.
func (p *Pool) Submit(j Job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.jobs <- j
	return nil
}

// Close stops intake and waits for queued and in-flight jobs to finish —
// the drain half of graceful shutdown. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
