// Package pool is the bounded worker pool shared by the session farm
// (internal/service) and the experiment engine (internal/sim): a fixed
// set of goroutines draining a fixed-depth job queue. Both subsystems
// execute their work — farm sessions, experiment trial shards — through
// this one code path, so concurrency behaviour (queue bounds, drain
// semantics, worker indexing) is defined exactly once.
//
// Each worker carries its index so downstream consumers can shard state
// per worker (the farm's stats sink keys its lock-free counter shards on
// it).
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull signals saturation on a non-blocking submit; callers
// surface backpressure to their clients and may retry after backoff.
var ErrQueueFull = errors.New("pool: queue full")

// ErrClosed marks a submit to a pool that is draining or drained.
var ErrClosed = errors.New("pool: closed")

// Job is one unit of work. The argument is the index of the worker
// executing it, in [0, Workers()).
type Job func(worker int)

// queued is one enqueued job plus its submission time, so the pool can
// account for how long work sat behind the workers.
type queued struct {
	j   Job
	enq time.Time
}

// Pool is a bounded worker pool.
type Pool struct {
	jobs    chan queued
	workers int
	wg      sync.WaitGroup

	active     atomic.Int64 // workers currently inside a job
	completed  atomic.Int64 // jobs finished
	shed       atomic.Int64 // TrySubmit rejections on a full queue
	waitMicros atomic.Int64 // cumulative queue wait, microseconds

	// mu is a reader/writer guard on the closed flag: submitters hold the
	// read side across their channel send so Close (the writer) cannot
	// close the job channel underneath an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// Stats is a snapshot of the pool's load counters.
type Stats struct {
	// Workers is the fixed worker count; Active is how many are inside a
	// job right now; QueueLen is the jobs waiting behind them.
	Workers  int
	Active   int
	QueueLen int
	// Completed counts finished jobs; Shed counts TrySubmit rejections.
	Completed int64
	Shed      int64
	// QueueWait is the cumulative time jobs spent queued before a worker
	// picked them up.
	QueueWait time.Duration
}

// Stats snapshots the pool's counters; safe from any goroutine.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:   p.workers,
		Active:    int(p.active.Load()),
		QueueLen:  len(p.jobs),
		Completed: p.completed.Load(),
		Shed:      p.shed.Load(),
		QueueWait: time.Duration(p.waitMicros.Load()) * time.Microsecond,
	}
}

// New starts `workers` goroutines with a queue of depth `queue`.
// Non-positive arguments are clamped to 1.
func New(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{jobs: make(chan queued, queue), workers: workers}
	for w := 0; w < workers; w++ {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for q := range p.jobs {
				p.waitMicros.Add(time.Since(q.enq).Microseconds())
				p.active.Add(1)
				q.j(w)
				p.active.Add(-1)
				p.completed.Add(1)
			}
		}()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueLen reports how many jobs are queued behind the workers right
// now — the input of the farm's load-shedding readiness gate.
func (p *Pool) QueueLen() int { return len(p.jobs) }

// TrySubmit enqueues a job without blocking. It returns ErrQueueFull when
// the queue is at capacity (saturation: the caller owns backoff) and
// ErrClosed after Close.
func (p *Pool) TrySubmit(j Job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- queued{j: j, enq: time.Now()}:
		return nil
	default:
		p.shed.Add(1)
		return fmt.Errorf("%w (%d jobs pending)", ErrQueueFull, cap(p.jobs))
	}
}

// Submit enqueues a job, blocking while the queue is full. It only errors
// (ErrClosed) once the pool is shut down.
func (p *Pool) Submit(j Job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.jobs <- queued{j: j, enq: time.Now()}
	return nil
}

// Close stops intake and waits for queued and in-flight jobs to finish —
// the drain half of graceful shutdown. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
