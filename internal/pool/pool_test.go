package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	p := New(1, 1)
	job := func(int) {
		started <- struct{}{}
		<-block
	}
	if err := p.TrySubmit(job); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue empty
	if err := p.TrySubmit(job); err != nil {
		t.Fatal(err) // fills the queue
	}
	if err := p.TrySubmit(job); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(block)
	<-started // second job starts after the first unblocks
	p.Close()
	if err := p.TrySubmit(job); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after Close, got %v", err)
	}
	if err := p.Submit(job); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after Close, got %v", err)
	}
}

func TestBlockingSubmitDrains(t *testing.T) {
	const jobs = 100
	p := New(4, 2) // queue much smaller than the job count
	var ran atomic.Int64
	for i := 0; i < jobs; i++ {
		if err := p.Submit(func(int) { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := ran.Load(); got != jobs {
		t.Fatalf("ran %d of %d jobs", got, jobs)
	}
}

func TestWorkerIndices(t *testing.T) {
	const workers = 3
	p := New(workers, 64)
	seen := make([]atomic.Int64, workers)
	for i := 0; i < 64; i++ {
		if err := p.Submit(func(w int) { seen[w].Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	total := int64(0)
	for w := range seen {
		total += seen[w].Load()
	}
	if total != 64 {
		t.Fatalf("jobs ran %d times, want 64", total)
	}
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}
