package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, compactEvery int) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, CompactEvery: compactEvery})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, key, data string) {
	t.Helper()
	if err := s.Put(key, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	put(t, s, "s-000001", "one")
	put(t, s, "s-000002", "two")
	put(t, s, "s-000001", "one-v2") // overwrite: last write wins
	if got, ok := s.Get("s-000001"); !ok || string(got) != "one-v2" {
		t.Fatalf("get: %q %v", got, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}

	s2 := open(t, dir, 0)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.WALRecords != 3 || rec.SnapshotRecords != 0 || rec.TornBytes != 0 {
		t.Fatalf("recovery %+v", rec)
	}
	if got, ok := s2.Get("s-000001"); !ok || string(got) != "one-v2" {
		t.Fatalf("reopen get: %q %v", got, ok)
	}
	if got, ok := s2.Get("s-000002"); !ok || string(got) != "two" {
		t.Fatalf("reopen get: %q %v", got, ok)
	}
	if keys := s2.Keys(""); len(keys) != 2 || keys[0] != "s-000001" || keys[1] != "s-000002" {
		t.Fatalf("keys %v", keys)
	}
}

// TestTornTailIsTruncated is the crash test: a hard kill mid-append leaves
// a partial frame at the WAL tail. Reopening must recover the intact
// prefix, discard the torn frame, and leave a WAL that appends cleanly.
func TestTornTailIsTruncated(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		// The header itself is cut short.
		"short-header": func(b []byte) []byte { return append(b, 0x07, 0x00) },
		// A full header promising more payload bytes than exist.
		"short-payload": func(b []byte) []byte {
			return append(b, 0x20, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y')
		},
		// An intact-length frame whose payload was corrupted in place.
		"crc-mismatch": func(b []byte) []byte {
			return append(b, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'z', 'z')
		},
		// An impossible (giant) length field.
		"insane-length": func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0x7f, 0x00, 0x00, 0x00, 0x00)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 0)
			put(t, s, "a", "alpha")
			put(t, s, "b", "beta")
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			walPath := filepath.Join(dir, walName)
			b, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			intact := len(b)
			if err := os.WriteFile(walPath, tear(b), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := open(t, dir, 0)
			rec := s2.Recovery()
			if rec.WALRecords != 2 {
				t.Fatalf("recovered %d records, want the intact prefix of 2", rec.WALRecords)
			}
			if rec.TornBytes == 0 {
				t.Fatal("torn tail not reported")
			}
			if got, ok := s2.Get("a"); !ok || string(got) != "alpha" {
				t.Fatalf("prefix lost: %q %v", got, ok)
			}
			if got, ok := s2.Get("b"); !ok || string(got) != "beta" {
				t.Fatalf("prefix lost: %q %v", got, ok)
			}
			// The torn bytes are gone from disk, and the WAL appends cleanly.
			if info, err := os.Stat(walPath); err != nil || info.Size() != int64(intact) {
				t.Fatalf("wal not truncated to the intact prefix: %v %v", info, err)
			}
			put(t, s2, "c", "gamma")
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := open(t, dir, 0)
			defer s3.Close()
			if got, ok := s3.Get("c"); !ok || string(got) != "gamma" {
				t.Fatalf("post-recovery append lost: %q %v", got, ok)
			}
			if s3.Recovery().TornBytes != 0 {
				t.Fatalf("second recovery still torn: %+v", s3.Recovery())
			}
		})
	}
}

// TestCompactionSnapshotsAndTruncatesWAL drives enough Puts to cross the
// auto-compaction threshold and asserts the snapshot takes over from the
// WAL, with everything intact after reopen.
func TestCompactionSnapshotsAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 8)
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("k-%03d", i%10), fmt.Sprintf("v%d", i))
	}
	if n := s.WALRecords(); n >= 8 {
		t.Fatalf("wal holds %d records, auto-compaction never fired", n)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 8)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotRecords == 0 {
		t.Fatalf("reopen ignored the snapshot: %+v", rec)
	}
	if s2.Len() != 10 {
		t.Fatalf("len %d after reopen", s2.Len())
	}
	// The latest write per key wins across snapshot + wal.
	if got, _ := s2.Get("k-009"); string(got) != "v19" {
		t.Fatalf("k-009 = %q", got)
	}
}

// TestReplayIsIdempotentAcrossSnapshotAndWAL simulates the crash window
// between the snapshot rename and the WAL truncation: both files hold the
// same records, and replay must not duplicate or resurrect anything.
func TestReplayIsIdempotentAcrossSnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	put(t, s, "a", "v1")
	put(t, s, "b", "v1")
	if err := s.Compact(); err != nil { // snapshot now holds a,b
		t.Fatal(err)
	}
	put(t, s, "a", "v2") // wal holds the newer a
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-create the crash window: prepend the snapshotted records back into
	// the WAL as if truncation had never happened.
	walPath := filepath.Join(dir, walName)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, append(append([]byte{}, snap...), wal...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("len %d after double replay", s2.Len())
	}
	if got, _ := s2.Get("a"); string(got) != "v2" {
		t.Fatalf("a = %q, want the WAL's newer v2", got)
	}
	if got, _ := s2.Get("b"); string(got) != "v1" {
		t.Fatalf("b = %q", got)
	}
}

func TestScanPrefixOrderAndAbort(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	defer s.Close()
	put(t, s, "x-000002", "j2")
	put(t, s, "s-000002", "b")
	put(t, s, "s-000001", "a")
	put(t, s, "x-000001", "j1")

	var keys []string
	if err := s.Scan("s-", func(k string, data []byte) error {
		keys = append(keys, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "s-000001" || keys[1] != "s-000002" {
		t.Fatalf("scan order %v", keys)
	}
	wantErr := fmt.Errorf("stop")
	calls := 0
	if err := s.Scan("", func(string, []byte) error { calls++; return wantErr }); err != wantErr {
		t.Fatalf("scan abort: %v", err)
	}
	if calls != 1 {
		t.Fatalf("scan continued after abort: %d calls", calls)
	}
}

func TestRecordBinaryRoundTripAndBounds(t *testing.T) {
	rec := Record{Key: "s-000042", Data: []byte{0, 1, 2, 255}}
	b, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || !bytes.Equal(got.Data, rec.Data) {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := (Record{}).MarshalBinary(); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := got.UnmarshalBinary([]byte{recVersion}); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := got.UnmarshalBinary([]byte{99, 1, 0, 'k'}); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestConcurrentPuts hammers the store from many goroutines across the
// compaction threshold; run under -race in CI.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 32)
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if _, ok := s.Get(key); !ok {
					t.Errorf("get %s: missing", key)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*each {
		t.Fatalf("len %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 32)
	defer s2.Close()
	if s2.Len() != writers*each {
		t.Fatalf("reopen len %d", s2.Len())
	}
}

// TestDeleteTombstonesSurviveReplayAndCompaction pins the deletion
// contract: a delete removes the key now, survives a reopen as a WAL
// tombstone, and vanishes entirely from the compacted snapshot.
func TestDeleteTombstonesSurviveReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	put(t, s, "idem-a", "resp-a")
	put(t, s, "idem-b", "resp-b")
	if err := s.Delete("idem-a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("idem-a"); ok {
		t.Fatal("deleted key still readable")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after delete, want 1", s.Len())
	}
	// Deleting an absent key is a no-op and appends nothing.
	before := s.Metrics().WALAppends
	if err := s.Delete("idem-a"); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().WALAppends; got != before {
		t.Fatalf("no-op delete appended: %d -> %d", before, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay applies the tombstone: the key stays gone across a reopen.
	s2 := open(t, dir, 0)
	if _, ok := s2.Get("idem-a"); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	if got, ok := s2.Get("idem-b"); !ok || string(got) != "resp-b" {
		t.Fatalf("surviving key: %q %v", got, ok)
	}
	// Compaction writes only live keys; the tombstone does not persist.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir, 0)
	defer s3.Close()
	rec := s3.Recovery()
	if rec.SnapshotRecords != 1 || rec.WALRecords != 0 {
		t.Fatalf("post-compaction recovery %+v, want 1 snapshot record", rec)
	}
	if _, ok := s3.Get("idem-a"); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
}

// TestTombstoneRecordBinaryRoundTrip pins the version-2 payload shape.
func TestTombstoneRecordBinaryRoundTrip(t *testing.T) {
	b, err := Record{Key: "k1", Tombstone: true}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tombVersion {
		t.Fatalf("tombstone version byte %d", b[0])
	}
	var r Record
	if err := r.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !r.Tombstone || r.Key != "k1" || r.Data != nil {
		t.Fatalf("round trip: %+v", r)
	}
	if _, err := (Record{Key: "k", Data: []byte("x"), Tombstone: true}).MarshalBinary(); err == nil {
		t.Fatal("tombstone with data must be rejected")
	}
	if err := new(Record).UnmarshalBinary(append(b, 'x')); err == nil {
		t.Fatal("tombstone payload with trailing data must be rejected")
	}
}
