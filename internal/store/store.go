// Package store is the farm's embedded, crash-safe persistence layer: an
// append-only write-ahead log (WAL) of length-prefixed, CRC-checked frames
// in front of periodically compacted snapshots. It is the durability
// contract behind the session farm (internal/service): every terminal
// session and experiment job is a keyed record; a daemon restart replays
// the snapshot and then the WAL, last write per key winning, so replay is
// idempotent even when a crash lands between the snapshot rename and the
// WAL truncation.
//
// Crash semantics: appends are buffered and flushed to the OS per Put (no
// per-record fsync — the farm's throughput budget), and fsynced on
// Compact, Sync, and Close. A hard kill can therefore tear the last
// frame(s); Open detects the torn tail (short header, short payload,
// impossible length, or CRC mismatch), keeps the intact prefix, truncates
// the garbage, and reports the discarded byte count in Recovery. What a
// frame never does is lie: a CRC-valid frame is byte-exact or it is not
// replayed at all.
//
// On-disk layout, both files (wal.log, snapshot.dat):
//
//	frame := u32 payloadLen | u32 crc32(payload) | payload
//	payload := u8 version | u16 keyLen | key | data
//
// Records carry opaque data; callers own the value encoding (the service
// layer gives its views encoding.BinaryMarshaler contracts, the same
// discipline lattigo applies to its protocol structures).
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	walName     = "wal.log"
	snapName    = "snapshot.dat"
	snapTmpName = "snapshot.tmp"

	// frameHeader is u32 length + u32 crc.
	frameHeader = 8
	// maxFrameSize bounds a single record; anything larger read back from
	// disk is treated as corruption, not allocated.
	maxFrameSize = 16 << 20

	// recVersion is the record payload format version.
	recVersion = 1
	// tombVersion marks a deletion record: same layout as recVersion but
	// with no data bytes; replaying one removes the key from the index.
	// v1-only readers reject it as unknown, which is the right failure —
	// they would otherwise resurrect deleted keys.
	tombVersion = 2

	defaultCompactEvery = 1024
)

// ErrClosed marks an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Config opens a store.
type Config struct {
	// Dir is the data directory (created if absent).
	Dir string
	// CompactEvery is the number of appended WAL records between automatic
	// compacted snapshots (0: default 1024). Lower values bound recovery
	// replay time at the cost of more frequent snapshot rewrites.
	CompactEvery int
}

// Record is one keyed entry. Data is opaque to the store. Tombstone marks
// a deletion record (no data); replaying one removes the key.
type Record struct {
	Key       string
	Data      []byte
	Tombstone bool
}

// MarshalBinary renders the record payload (version | keyLen | key | data).
func (r Record) MarshalBinary() ([]byte, error) {
	if len(r.Key) == 0 {
		return nil, errors.New("store: empty record key")
	}
	if len(r.Key) > 0xFFFF {
		return nil, fmt.Errorf("store: key of %d bytes exceeds the 64KiB bound", len(r.Key))
	}
	version := byte(recVersion)
	if r.Tombstone {
		if len(r.Data) != 0 {
			return nil, errors.New("store: tombstone record carries data")
		}
		version = tombVersion
	}
	buf := make([]byte, 0, 3+len(r.Key)+len(r.Data))
	buf = append(buf, version)
	var kl [2]byte
	binary.LittleEndian.PutUint16(kl[:], uint16(len(r.Key)))
	buf = append(buf, kl[:]...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Data...)
	return buf, nil
}

// UnmarshalBinary parses a record payload.
func (r *Record) UnmarshalBinary(b []byte) error {
	if len(b) < 3 {
		return errors.New("store: record payload too short")
	}
	if b[0] != recVersion && b[0] != tombVersion {
		return fmt.Errorf("store: unknown record version %d", b[0])
	}
	kl := int(binary.LittleEndian.Uint16(b[1:3]))
	if len(b) < 3+kl || kl == 0 {
		return errors.New("store: record key length out of range")
	}
	r.Key = string(b[3 : 3+kl])
	r.Tombstone = b[0] == tombVersion
	if r.Tombstone {
		if len(b) != 3+kl {
			return errors.New("store: tombstone record carries data")
		}
		r.Data = nil
		return nil
	}
	r.Data = append([]byte(nil), b[3+kl:]...)
	return nil
}

// Recovery summarizes what Open found on disk.
type Recovery struct {
	// SnapshotRecords is the number of records replayed from the snapshot.
	SnapshotRecords int
	// WALRecords is the number of intact records replayed from the WAL.
	WALRecords int
	// TornBytes is the size of the discarded torn/corrupt WAL tail.
	TornBytes int64
}

// Store is an embedded keyed record store: an in-memory index (latest data
// per key) kept durable by the WAL + snapshot pair. All methods are safe
// for concurrent use.
type Store struct {
	dir          string
	compactEvery int

	mu          sync.Mutex
	wal         *os.File
	w           *bufio.Writer
	index       map[string][]byte
	sorted      []string // sorted key cache; nil when dirty
	walRecords  int
	appends     int64 // lifetime WAL appends (never reset by compaction)
	compactions int64
	replayTime  time.Duration // how long Open spent recovering
	rec         Recovery
	closed      bool
}

// Metrics is a snapshot of the store's observability counters.
type Metrics struct {
	// WALAppends counts records appended since Open (monotonic; compaction
	// does not reset it).
	WALAppends int64
	// Compactions counts snapshot rewrites since Open.
	Compactions int64
	// Keys is the live record count.
	Keys int
	// ReplayTime is how long Open spent replaying snapshot + WAL.
	ReplayTime time.Duration
}

// Metrics snapshots the store's counters; safe from any goroutine.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		WALAppends:  s.appends,
		Compactions: s.compactions,
		Keys:        len(s.index),
		ReplayTime:  s.replayTime,
	}
}

// Open recovers the store in cfg.Dir: the snapshot is replayed first, then
// the WAL (later frames override earlier ones per key), a torn WAL tail is
// truncated, and the WAL is reopened for appends.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = defaultCompactEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          cfg.Dir,
		compactEvery: cfg.CompactEvery,
		index:        make(map[string][]byte),
	}
	replayStart := time.Now()

	if f, err := os.Open(filepath.Join(cfg.Dir, snapName)); err == nil {
		n, _, rerr := replay(f, s.apply)
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
		s.rec.SnapshotRecords = n
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	walPath := filepath.Join(cfg.Dir, walName)
	if f, err := os.Open(walPath); err == nil {
		n, valid, rerr := replay(f, s.apply)
		info, serr := f.Stat()
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
		if serr != nil {
			return nil, fmt.Errorf("store: %w", serr)
		}
		s.rec.WALRecords = n
		s.walRecords = n
		if torn := info.Size() - valid; torn > 0 {
			// A crash tore the tail: keep the intact prefix, drop the rest.
			s.rec.TornBytes = torn
			if err := os.Truncate(walPath, valid); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	s.replayTime = time.Since(replayStart)

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.w = bufio.NewWriter(wal)
	return s, nil
}

// apply folds one replayed payload into the index.
func (s *Store) apply(payload []byte) error {
	var rec Record
	if err := rec.UnmarshalBinary(payload); err != nil {
		return err
	}
	if rec.Tombstone {
		delete(s.index, rec.Key)
	} else {
		s.index[rec.Key] = rec.Data
	}
	s.sorted = nil
	return nil
}

// replay reads frames until EOF or the first torn/corrupt frame, calling
// apply for each intact payload. It returns the record count and the byte
// offset just past the last intact frame. A torn tail is not an error —
// that is the crash the store exists to survive.
func replay(r io.Reader, apply func(payload []byte) error) (records int, valid int64, err error) {
	br := bufio.NewReader(r)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return records, valid, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrameSize {
			return records, valid, nil // impossible length: corrupt tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, valid, nil // bit rot or partial overwrite
		}
		if err := apply(payload); err != nil {
			return records, valid, err
		}
		valid += frameHeader + int64(length)
		records++
	}
}

// writeFrame emits one length-prefixed CRC-checked frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Put appends one record to the WAL and updates the index. The write is
// flushed to the OS before Put returns; it is fsynced at the next Compact,
// Sync, or Close. Crossing CompactEvery appended records triggers an
// automatic compaction.
func (s *Store) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	payload, err := Record{Key: key, Data: data}.MarshalBinary()
	if err != nil {
		return err
	}
	if err := writeFrame(s.w, payload); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if _, existed := s.index[key]; !existed {
		s.sorted = nil
	}
	s.index[key] = append([]byte(nil), data...)
	s.walRecords++
	s.appends++
	if s.walRecords >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Delete appends a tombstone for key and drops it from the index. Deleting
// an absent key is a no-op (no WAL record). The next compaction omits the
// key entirely, so tombstones do not accumulate in the snapshot.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	payload, err := Record{Key: key, Tombstone: true}.MarshalBinary()
	if err != nil {
		return err
	}
	if err := writeFrame(s.w, payload); err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	delete(s.index, key)
	s.sorted = nil
	s.walRecords++
	s.appends++
	if s.walRecords >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Get returns a copy of the latest data for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.index[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Count returns how many keys carry the given prefix ("" for all) — a
// cheap observability read: no allocation, no sort.
func (s *Store) Count(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prefix == "" {
		return len(s.index)
	}
	n := 0
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}

// Keys returns the keys with the given prefix ("" for all), sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, k := range s.sortedLocked() {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// Scan visits records whose key has the given prefix, in ascending key
// order. The data slice is only valid for the duration of the callback.
// Returning an error aborts the scan.
func (s *Store) Scan(prefix string, fn func(key string, data []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.sortedLocked() {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if err := fn(k, s.index[k]); err != nil {
			return err
		}
	}
	return nil
}

// sortedLocked returns the cached sorted key slice, rebuilding it if dirty.
func (s *Store) sortedLocked() []string {
	if s.sorted == nil {
		s.sorted = make([]string, 0, len(s.index))
		for k := range s.index {
			s.sorted = append(s.sorted, k)
		}
		sort.Strings(s.sorted)
	}
	return s.sorted
}

// Recovery reports what Open found on disk.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// WALRecords returns the records appended since the last compaction — the
// replay cost of a crash right now.
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Compact writes the full index as a fresh snapshot (atomically: temp file,
// fsync, rename) and then truncates the WAL. A crash between the rename and
// the truncation double-applies the WAL records on the next Open, which is
// harmless: replay is last-write-wins per key.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmpPath := filepath.Join(s.dir, snapTmpName)
	f, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, k := range s.sortedLocked() {
		payload, err := Record{Key: k, Data: s.index[k]}.MarshalBinary()
		if err == nil {
			err = writeFrame(bw, payload)
		}
		if err != nil {
			f.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The snapshot is durable; the WAL's records are now redundant.
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.walRecords = 0
	s.compactions++
	return nil
}

// Sync flushes and fsyncs the WAL — full durability up to the last Put.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.wal.Sync()
}

// Close flushes, fsyncs, and closes the WAL. It is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Flush()
	if serr := s.wal.Sync(); err == nil {
		err = serr
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
