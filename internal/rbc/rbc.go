// Package rbc implements Bracha's asynchronous reliable broadcast
// (Bracha 1987), tolerating t < n/3 Byzantine parties.
//
// Properties (for a fixed instance with designated dealer):
//   - Validity: if the dealer is honest and broadcasts v, every honest
//     party eventually delivers v.
//   - Agreement: no two honest parties deliver different values.
//   - Totality: if any honest party delivers, every honest party does.
//
// Reliable broadcast is the backbone of Byzantine agreement (package ba)
// and of the agreement-on-common-subset protocol (package acs), which in
// turn anchor the BCG-style secure computation the paper's cheap-talk
// construction compiles mediators into.
package rbc

import (
	"asyncmediator/internal/async"
	"asyncmediator/internal/proto"
)

// Message kinds exchanged by the protocol. Values are opaque byte strings;
// equality is byte equality.
type (
	// MsgInit is the dealer's initial proposal.
	MsgInit struct{ V []byte }
	// MsgEcho is a witness echo of the dealer's proposal.
	MsgEcho struct{ V []byte }
	// MsgReady indicates its sender is ready to deliver V.
	MsgReady struct{ V []byte }
)

// RBC is one reliable-broadcast instance. Register (or Spawn) it under the
// same instance id at every party.
type RBC struct {
	dealer async.PID
	t      int
	// value is what the dealer broadcasts (dealer only; may be set later
	// via Input).
	value []byte
	input bool

	sentEcho  bool
	sentReady bool
	delivered bool

	echoes  map[string]map[async.PID]bool
	readies map[string]map[async.PID]bool

	onDeliver func(ctx *proto.Ctx, v []byte)
}

var _ proto.Module = (*RBC)(nil)

// New creates an RBC instance for the given dealer and fault bound t.
// onDeliver is invoked exactly once, when the instance delivers.
func New(dealer async.PID, t int, onDeliver func(ctx *proto.Ctx, v []byte)) *RBC {
	return &RBC{
		dealer:    dealer,
		t:         t,
		echoes:    make(map[string]map[async.PID]bool),
		readies:   make(map[string]map[async.PID]bool),
		onDeliver: onDeliver,
	}
}

// NewDealer creates the dealer-side instance that broadcasts v on start.
func NewDealer(dealer async.PID, t int, v []byte, onDeliver func(ctx *proto.Ctx, v []byte)) *RBC {
	r := New(dealer, t, onDeliver)
	r.value = append([]byte(nil), v...)
	r.input = true
	return r
}

// Delivered reports whether the instance has delivered.
func (r *RBC) Delivered() bool { return r.delivered }

// Start implements proto.Module.
func (r *RBC) Start(ctx *proto.Ctx) {
	if ctx.Self() == r.dealer && r.input {
		ctx.Broadcast(MsgInit{V: r.value})
	}
}

// Input supplies the dealer's value after start (for dynamically spawned
// instances). No-op for non-dealers or if already provided.
func (r *RBC) Input(ctx *proto.Ctx, v []byte) {
	if ctx.Self() != r.dealer || r.input {
		return
	}
	r.value = append([]byte(nil), v...)
	r.input = true
	ctx.Broadcast(MsgInit{V: r.value})
}

// Handle implements proto.Module.
func (r *RBC) Handle(ctx *proto.Ctx, from async.PID, body any) {
	n := ctx.N()
	switch m := body.(type) {
	case MsgInit:
		// Only the dealer's INIT counts; echo at most once.
		if from != r.dealer || r.sentEcho {
			return
		}
		r.sentEcho = true
		ctx.Broadcast(MsgEcho{V: m.V})

	case MsgEcho:
		key := string(m.V)
		if r.echoes[key] == nil {
			r.echoes[key] = make(map[async.PID]bool)
		}
		if r.echoes[key][from] {
			return // duplicate
		}
		r.echoes[key][from] = true
		// Echo amplification: 2t+1 echoes for v => READY(v).
		if !r.sentReady && len(r.echoes[key]) >= 2*r.t+1 {
			r.sentReady = true
			ctx.Broadcast(MsgReady{V: m.V})
		}

	case MsgReady:
		key := string(m.V)
		if r.readies[key] == nil {
			r.readies[key] = make(map[async.PID]bool)
		}
		if r.readies[key][from] {
			return
		}
		r.readies[key][from] = true
		// Ready amplification: t+1 READY(v) => READY(v) (ensures totality).
		if !r.sentReady && len(r.readies[key]) >= r.t+1 {
			r.sentReady = true
			ctx.Broadcast(MsgReady{V: m.V})
		}
		// Delivery: 2t+1 READY(v).
		if !r.delivered && len(r.readies[key]) >= 2*r.t+1 && 2*r.t+1 <= n {
			r.delivered = true
			if r.onDeliver != nil {
				r.onDeliver(ctx, []byte(key))
			}
		}
	}
}
