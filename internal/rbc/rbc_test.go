package rbc

import (
	"bytes"
	"fmt"
	"testing"

	"asyncmediator/internal/async"
	"asyncmediator/internal/proto"
)

// harness builds n parties; parties in byz get the process returned by
// mkByz(i) instead of an honest RBC host.
func harness(t *testing.T, n, tFault int, dealer async.PID, value []byte,
	byz map[int]func(i int) async.Process, sched async.Scheduler, seed int64) [][]byte {
	t.Helper()
	delivered := make([][]byte, n)
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		if byz != nil {
			if mk, ok := byz[i]; ok {
				procs[i] = mk(i)
				continue
			}
		}
		i := i
		h := proto.NewHost()
		var inst *RBC
		if async.PID(i) == dealer {
			inst = NewDealer(dealer, tFault, value, func(ctx *proto.Ctx, v []byte) { delivered[i] = v })
		} else {
			inst = New(dealer, tFault, func(ctx *proto.Ctx, v []byte) { delivered[i] = v })
		}
		if err := h.Register("rbc", inst); err != nil {
			t.Fatal(err)
		}
		procs[i] = h
	}
	if sched == nil {
		sched = &async.RoundRobinScheduler{}
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: sched, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return delivered
}

func TestHonestBroadcast(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		delivered := harness(t, cfg.n, cfg.t, 0, []byte("value"), nil, nil, 1)
		for i, v := range delivered {
			if !bytes.Equal(v, []byte("value")) {
				t.Fatalf("n=%d t=%d: party %d delivered %q", cfg.n, cfg.t, i, v)
			}
		}
	}
}

func TestHonestBroadcastRandomSchedulers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		delivered := harness(t, 7, 2, 3, []byte("xyz"), nil, async.NewRandomScheduler(seed), seed)
		for i, v := range delivered {
			if !bytes.Equal(v, []byte("xyz")) {
				t.Fatalf("seed %d: party %d delivered %q", seed, i, v)
			}
		}
	}
}

// equivocator is a Byzantine dealer that sends INIT "a" to the first half
// and INIT "b" to the second half, then echoes both.
type equivocator struct{ n, t int }

func (e *equivocator) Start(env *async.Env) {
	for p := 0; p < e.n; p++ {
		v := []byte("a")
		if p >= e.n/2 {
			v = []byte("b")
		}
		env.Send(async.PID(p), proto.Envelope{Instance: "rbc", Body: MsgInit{V: v}})
	}
}
func (e *equivocator) Deliver(env *async.Env, m async.Message) {}

func TestAgreementUnderEquivocatingDealer(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n, tf := 7, 2
		byz := map[int]func(int) async.Process{
			0: func(i int) async.Process { return &equivocator{n: n, t: tf} },
		}
		delivered := harness(t, n, tf, 0, nil, byz, async.NewRandomScheduler(seed), seed)
		// Agreement: all honest parties that delivered got the same value.
		var got []byte
		for i := 1; i < n; i++ {
			if delivered[i] == nil {
				continue
			}
			if got == nil {
				got = delivered[i]
			} else if !bytes.Equal(got, delivered[i]) {
				t.Fatalf("seed %d: parties delivered both %q and %q", seed, got, delivered[i])
			}
		}
	}
}

// echoForger echoes a forged value but is not the dealer; honest parties
// must still deliver the dealer's value.
type echoForger struct{ n int }

func (f *echoForger) Start(env *async.Env) {
	for p := 0; p < f.n; p++ {
		env.Send(async.PID(p), proto.Envelope{Instance: "rbc", Body: MsgEcho{V: []byte("forged")}})
		env.Send(async.PID(p), proto.Envelope{Instance: "rbc", Body: MsgReady{V: []byte("forged")}})
	}
}
func (f *echoForger) Deliver(env *async.Env, m async.Message) {}

func TestForgedEchoesInsufficient(t *testing.T) {
	n, tf := 7, 2
	byz := map[int]func(int) async.Process{
		5: func(i int) async.Process { return &echoForger{n: n} },
		6: func(i int) async.Process { return &echoForger{n: n} },
	}
	delivered := harness(t, n, tf, 0, []byte("real"), byz, nil, 3)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(delivered[i], []byte("real")) {
			t.Fatalf("party %d delivered %q, want real", i, delivered[i])
		}
	}
}

// silent crashes immediately (sends nothing).
type silent struct{}

func (silent) Start(env *async.Env)                    {}
func (silent) Deliver(env *async.Env, m async.Message) {}

func TestToleratesCrashes(t *testing.T) {
	n, tf := 7, 2
	byz := map[int]func(int) async.Process{
		1: func(i int) async.Process { return silent{} },
		2: func(i int) async.Process { return silent{} },
	}
	delivered := harness(t, n, tf, 0, []byte("v"), byz, nil, 4)
	for i := 3; i < n; i++ {
		if !bytes.Equal(delivered[i], []byte("v")) {
			t.Fatalf("party %d did not deliver", i)
		}
	}
}

func TestCrashedDealerNoDelivery(t *testing.T) {
	n, tf := 4, 1
	byz := map[int]func(int) async.Process{
		0: func(i int) async.Process { return silent{} },
	}
	delivered := harness(t, n, tf, 0, nil, byz, nil, 5)
	for i := 1; i < n; i++ {
		if delivered[i] != nil {
			t.Fatalf("party %d delivered %q from a crashed dealer", i, delivered[i])
		}
	}
}

func TestDealerInputAfterStart(t *testing.T) {
	// The dealer's value arrives via Input (dynamic spawning pattern).
	n, tf := 4, 1
	delivered := make([][]byte, n)
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		i := i
		h := proto.NewHost()
		inst := New(0, tf, func(ctx *proto.Ctx, v []byte) { delivered[i] = v })
		if err := h.Register("rbc", inst); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Trigger module: on start, feed the dealer input.
			if err := h.Register("trigger", &proto.FuncModule{
				OnStart: func(ctx *proto.Ctx) {
					inst.Input(ctx.For("rbc"), []byte("late-input"))
					inst.Input(ctx.For("rbc"), []byte("ignored-second-input"))
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		procs[i] = h
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: &async.RoundRobinScheduler{}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(delivered[i], []byte("late-input")) {
			t.Fatalf("party %d delivered %q", i, delivered[i])
		}
	}
}

func TestManyParallelInstances(t *testing.T) {
	// n dealers each broadcast their own value concurrently under one host.
	n, tf := 4, 1
	delivered := make([]map[int][]byte, n)
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		i := i
		delivered[i] = make(map[int][]byte)
		h := proto.NewHost()
		for d := 0; d < n; d++ {
			d := d
			id := fmt.Sprintf("rbc/%d", d)
			var inst *RBC
			cb := func(ctx *proto.Ctx, v []byte) { delivered[i][d] = v }
			if d == i {
				inst = NewDealer(async.PID(d), tf, []byte{byte('A' + d)}, cb)
			} else {
				inst = New(async.PID(d), tf, cb)
			}
			if err := h.Register(id, inst); err != nil {
				t.Fatal(err)
			}
		}
		procs[i] = h
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: async.NewRandomScheduler(7), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for d := 0; d < n; d++ {
			want := []byte{byte('A' + d)}
			if !bytes.Equal(delivered[i][d], want) {
				t.Fatalf("party %d instance %d delivered %q, want %q", i, d, delivered[i][d], want)
			}
		}
	}
	if res.Stats.MessagesSent == 0 {
		t.Fatal("no messages counted")
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	// One RBC costs O(n^2) messages: n INIT + n*n ECHO + n*n READY.
	counts := map[int]int{}
	for _, n := range []int{4, 7, 10} {
		tf := (n - 1) / 3
		procs := make([]async.Process, n)
		for i := 0; i < n; i++ {
			h := proto.NewHost()
			var inst *RBC
			if i == 0 {
				inst = NewDealer(0, tf, []byte("v"), nil)
			} else {
				inst = New(0, tf, nil)
			}
			if err := h.Register("rbc", inst); err != nil {
				t.Fatal(err)
			}
			procs[i] = h
		}
		rt, err := async.New(async.Config{Procs: procs, Scheduler: &async.RoundRobinScheduler{}, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		counts[n] = res.Stats.MessagesSent
	}
	// Shape check: quadratic growth, within loose constants.
	if !(counts[7] > counts[4] && counts[10] > counts[7]) {
		t.Fatalf("message counts not increasing: %v", counts)
	}
	if counts[10] > 3*10*10+10 {
		t.Fatalf("n=10 used %d messages; exceeds 3n^2+n", counts[10])
	}
}
