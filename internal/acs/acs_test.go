package acs

import (
	"bytes"
	"fmt"
	"testing"

	"asyncmediator/internal/async"
	"asyncmediator/internal/ba"
	"asyncmediator/internal/proto"
)

func runACS(t *testing.T, n, tf int, byz map[int]async.Process, sched async.Scheduler, seed int64) []map[int][]byte {
	t.Helper()
	outs := make([]map[int][]byte, n)
	procs := make([]async.Process, n)
	coin := ba.SharedCoin{Seed: seed}
	for i := 0; i < n; i++ {
		if p, ok := byz[i]; ok {
			procs[i] = p
			continue
		}
		i := i
		h := proto.NewHost()
		inst := New(n, tf, coin, func(ctx *proto.Ctx, values map[int][]byte) { outs[i] = values })
		if err := h.Register("acs", inst); err != nil {
			t.Fatal(err)
		}
		h.OnStart(func(env *async.Env) {
			inst.Propose(h.Ctx(env, "acs"), []byte(fmt.Sprintf("v%d", i)))
		})
		procs[i] = h
	}
	if sched == nil {
		sched = &async.RoundRobinScheduler{}
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: sched, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return outs
}

func sameSubsets(a, b map[int][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

func TestAllHonest(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{4, 1}, {7, 2}} {
		outs := runACS(t, cfg.n, cfg.t, nil, nil, 1)
		for i, out := range outs {
			if out == nil {
				t.Fatalf("n=%d: party %d did not complete", cfg.n, i)
			}
			if len(out) < cfg.n-cfg.t {
				t.Fatalf("n=%d: subset too small: %d", cfg.n, len(out))
			}
			if !sameSubsets(out, outs[0]) {
				t.Fatalf("n=%d: subsets differ", cfg.n)
			}
			for j, v := range out {
				want := []byte(fmt.Sprintf("v%d", j))
				if !bytes.Equal(v, want) {
					t.Fatalf("party %d has %q for %d, want %q", i, v, j, want)
				}
			}
		}
	}
}

func TestAllHonestRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		outs := runACS(t, 4, 1, nil, async.NewRandomScheduler(seed), seed)
		for i, out := range outs {
			if out == nil {
				t.Fatalf("seed %d: party %d did not complete", seed, i)
			}
			if !sameSubsets(out, outs[0]) {
				t.Fatalf("seed %d: subsets differ: %v vs %v", seed, out, outs[0])
			}
		}
	}
}

type silent struct{}

func (silent) Start(env *async.Env)                    {}
func (silent) Deliver(env *async.Env, m async.Message) {}

func TestCrashedPartyExcludedOrIncluded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n, tf := 7, 2
		byz := map[int]async.Process{2: silent{}, 5: silent{}}
		outs := runACS(t, n, tf, byz, async.NewRandomScheduler(seed), seed)
		var ref map[int][]byte
		for i, out := range outs {
			if _, isByz := byz[i]; isByz {
				continue
			}
			if out == nil {
				t.Fatalf("seed %d: honest party %d did not complete", seed, i)
			}
			if ref == nil {
				ref = out
			} else if !sameSubsets(out, ref) {
				t.Fatalf("seed %d: honest subsets differ", seed)
			}
			if len(out) < n-tf {
				t.Fatalf("seed %d: subset size %d < n-t", seed, len(out))
			}
			// Crashed parties never broadcast, so they cannot be included.
			if _, ok := out[2]; ok {
				t.Fatalf("seed %d: crashed party 2 included", seed)
			}
			if _, ok := out[5]; ok {
				t.Fatalf("seed %d: crashed party 5 included", seed)
			}
		}
	}
}

func TestLateProposalStillCompletes(t *testing.T) {
	// One honest party proposes only after receiving a nudge message,
	// modelling the MPC input phase where proposals depend on AVSS
	// completions.
	n, tf := 4, 1
	outs := make([]map[int][]byte, n)
	procs := make([]async.Process, n)
	coin := ba.SharedCoin{Seed: 42}
	for i := 0; i < n; i++ {
		i := i
		h := proto.NewHost()
		inst := New(n, tf, coin, func(ctx *proto.Ctx, values map[int][]byte) { outs[i] = values })
		if err := h.Register("acs", inst); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			// Party 3 proposes upon "nudge" from party 0.
			if err := h.Register("nudge", &proto.FuncModule{
				OnHandle: func(ctx *proto.Ctx, from async.PID, body any) {
					inst.Propose(ctx.For("acs"), []byte("late"))
				},
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := h.Register("nudge", &proto.FuncModule{
				OnStart: func(ctx *proto.Ctx) {
					if ctx.Self() == 0 {
						ctx.SendTo(3, "nudge", "go")
					}
				},
			}); err != nil {
				t.Fatal(err)
			}
			h.OnStart(func(env *async.Env) {
				inst.Propose(h.Ctx(env, "acs"), []byte(fmt.Sprintf("v%d", i)))
			})
		}
		procs[i] = h
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: &async.RoundRobinScheduler{}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out == nil {
			t.Fatalf("party %d did not complete", i)
		}
		if !sameSubsets(out, outs[0]) {
			t.Fatal("subsets differ")
		}
	}
}

func TestSubsetAtLeastNMinusT(t *testing.T) {
	// Property: every completion has >= n-t members across schedules.
	for seed := int64(20); seed < 26; seed++ {
		outs := runACS(t, 7, 2, nil, async.NewRandomScheduler(seed), seed)
		for _, out := range outs {
			if out == nil {
				t.Fatal("incomplete")
			}
			if len(out) < 5 {
				t.Fatalf("seed %d: subset %d < 5", seed, len(out))
			}
		}
	}
}
