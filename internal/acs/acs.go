// Package acs implements Agreement on a Common Subset (Ben-Or, Kelmer,
// Rabin 1994) for t < n/3: every party proposes a value, and all honest
// parties agree on the same set of at least n-t (party, value) pairs.
//
// ACS is the asynchronous substitute for a synchronous round: BCG-style
// MPC uses it to agree on whose inputs are in the computation and on which
// resharings feed each multiplication's degree reduction. It composes n
// reliable broadcasts (package rbc) with n binary agreements (package ba).
package acs

import (
	"fmt"

	"asyncmediator/internal/async"
	"asyncmediator/internal/ba"
	"asyncmediator/internal/proto"
	"asyncmediator/internal/rbc"
)

// ACS is one common-subset instance. All parties must register it under
// the same instance id.
type ACS struct {
	n, t int
	coin ba.Coin
	inst string // own instance id, fixed at Start

	value    []byte
	haveVal  bool
	started  bool
	proposed map[int]bool

	rbcs   map[int]*rbc.RBC
	bas    map[int]*ba.BA
	rbcVal map[int][]byte
	baDec  map[int]int

	completed  bool
	onComplete func(ctx *proto.Ctx, values map[int][]byte)
}

var _ proto.Module = (*ACS)(nil)

// New creates an ACS instance for n parties with fault bound t.
// onComplete fires exactly once with the agreed subset: a map from party
// index to that party's reliably-broadcast value (at least n-t entries).
func New(n, t int, coin ba.Coin, onComplete func(ctx *proto.Ctx, values map[int][]byte)) *ACS {
	return &ACS{
		n:          n,
		t:          t,
		coin:       coin,
		proposed:   make(map[int]bool),
		rbcs:       make(map[int]*rbc.RBC),
		bas:        make(map[int]*ba.BA),
		rbcVal:     make(map[int][]byte),
		baDec:      make(map[int]int),
		onComplete: onComplete,
	}
}

// Completed reports whether the common subset has been output.
func (a *ACS) Completed() bool { return a.completed }

// Child instance ids are derived from the ACS's own id, NOT from the id of
// whatever child context a callback happens to run under.
func (a *ACS) rbcID(j int) string { return fmt.Sprintf("%s/rbc/%d", a.inst, j) }
func (a *ACS) baID(j int) string  { return fmt.Sprintf("%s/ba/%d", a.inst, j) }

// Start implements proto.Module: it spawns all child instances. The
// party's own proposal arrives via Propose.
func (a *ACS) Start(ctx *proto.Ctx) {
	a.inst = ctx.Instance()
	a.started = true
	for j := 0; j < a.n; j++ {
		j := j
		r := rbc.New(async.PID(j), a.t, func(c *proto.Ctx, v []byte) { a.onRBC(c, j, v) })
		a.rbcs[j] = r
		ctx.Spawn(a.rbcID(j), r)
		b := ba.New(a.t, a.coin, func(c *proto.Ctx, d int) { a.onBA(c, j, d) })
		a.bas[j] = b
		ctx.Spawn(a.baID(j), b)
	}
	if a.haveVal {
		a.rbcs[int(ctx.Self())].Input(ctx.For(a.rbcID(int(ctx.Self()))), a.value)
	}
}

// Propose supplies this party's value. It may be called before or after
// Start; calling twice is a no-op.
func (a *ACS) Propose(ctx *proto.Ctx, v []byte) {
	if a.haveVal {
		return
	}
	a.value = append([]byte(nil), v...)
	a.haveVal = true
	if a.started {
		self := int(ctx.Self())
		a.rbcs[self].Input(ctx.For(a.rbcID(self)), a.value)
	}
}

// Handle implements proto.Module. ACS itself exchanges no direct messages;
// all traffic flows through its children.
func (a *ACS) Handle(ctx *proto.Ctx, from async.PID, body any) {}

func (a *ACS) onRBC(ctx *proto.Ctx, j int, v []byte) {
	if _, dup := a.rbcVal[j]; dup {
		return
	}
	a.rbcVal[j] = v
	// Vote for inclusion of any party whose broadcast we received.
	a.propose(ctx, j, 1)
	a.tryComplete(ctx)
}

func (a *ACS) onBA(ctx *proto.Ctx, j int, d int) {
	if _, dup := a.baDec[j]; dup {
		return
	}
	a.baDec[j] = d
	ones := 0
	for _, dec := range a.baDec {
		if dec == 1 {
			ones++
		}
	}
	if ones >= a.n-a.t {
		// Enough parties are in: vote 0 for everyone still undetermined so
		// all n agreements terminate.
		for k := 0; k < a.n; k++ {
			a.propose(ctx, k, 0)
		}
	}
	a.tryComplete(ctx)
}

func (a *ACS) propose(ctx *proto.Ctx, j, v int) {
	if a.proposed[j] {
		return
	}
	a.proposed[j] = true
	a.bas[j].Propose(ctx.For(a.baID(j)), v)
}

func (a *ACS) tryComplete(ctx *proto.Ctx) {
	if a.completed || len(a.baDec) < a.n {
		return
	}
	// All BAs decided; ensure every included party's broadcast arrived
	// (totality guarantees it eventually will).
	out := make(map[int][]byte)
	for j, d := range a.baDec {
		if d != 1 {
			continue
		}
		v, ok := a.rbcVal[j]
		if !ok {
			return
		}
		out[j] = v
	}
	a.completed = true
	if a.onComplete != nil {
		a.onComplete(ctx, out)
	}
}
