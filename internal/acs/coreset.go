package acs

import (
	"fmt"

	"asyncmediator/internal/async"
	"asyncmediator/internal/ba"
	"asyncmediator/internal/proto"
)

// CoreSet agrees on a set of at least n-t parties satisfying some local
// completion predicate (e.g. "all of party d's secret sharings finished").
// It is the BA-only core of BKR's ACS: parties mark candidates ready as
// local evidence arrives; one binary agreement per candidate decides
// membership. Validity of the underlying BA guarantees every member was
// marked ready by at least one honest party, whose evidence (by AVSS
// totality) eventually reaches everyone.
type CoreSet struct {
	n, t int
	coin ba.Coin
	inst string

	bas      []*ba.BA
	early    []int // MarkReady calls arriving before Start
	proposed map[int]bool
	dec      map[int]int

	completed  bool
	members    []int
	onComplete func(ctx *proto.Ctx, members []int)
}

var _ proto.Module = (*CoreSet)(nil)

// NewCoreSet creates a core-set instance. onComplete fires once with the
// sorted member list (size >= n-t).
func NewCoreSet(n, t int, coin ba.Coin, onComplete func(ctx *proto.Ctx, members []int)) *CoreSet {
	return &CoreSet{
		n:          n,
		t:          t,
		coin:       coin,
		proposed:   make(map[int]bool),
		dec:        make(map[int]int),
		onComplete: onComplete,
	}
}

// Completed reports completion and the members.
func (c *CoreSet) Completed() ([]int, bool) { return c.members, c.completed }

func (c *CoreSet) baID(j int) string { return fmt.Sprintf("%s/ba/%d", c.inst, j) }

// Start implements proto.Module.
func (c *CoreSet) Start(ctx *proto.Ctx) {
	c.inst = ctx.Instance()
	c.bas = make([]*ba.BA, c.n)
	for j := 0; j < c.n; j++ {
		j := j
		b := ba.New(c.t, c.coin, func(cc *proto.Ctx, d int) { c.onBA(cc, j, d) })
		c.bas[j] = b
		ctx.Spawn(c.baID(j), b)
	}
	for _, j := range c.early {
		c.propose(ctx, j, 1)
	}
	c.early = nil
}

// Handle implements proto.Module. CoreSet exchanges no direct messages;
// all traffic flows through its child agreements.
func (c *CoreSet) Handle(ctx *proto.Ctx, from async.PID, body any) {}

// MarkReady votes for candidate j's membership. Call when the local
// completion predicate for j becomes true. Calls before Start are
// buffered and replayed.
func (c *CoreSet) MarkReady(ctx *proto.Ctx, j int) {
	if j < 0 || j >= c.n {
		return
	}
	if c.bas == nil {
		c.early = append(c.early, j)
		return
	}
	c.propose(ctx, j, 1)
}

func (c *CoreSet) propose(ctx *proto.Ctx, j, v int) {
	if c.proposed[j] {
		return
	}
	c.proposed[j] = true
	c.bas[j].Propose(ctx.For(c.baID(j)), v)
}

func (c *CoreSet) onBA(ctx *proto.Ctx, j, d int) {
	if _, dup := c.dec[j]; dup {
		return
	}
	c.dec[j] = d
	ones := 0
	for _, v := range c.dec {
		if v == 1 {
			ones++
		}
	}
	if ones >= c.n-c.t {
		for k := 0; k < c.n; k++ {
			c.propose(ctx, k, 0)
		}
	}
	if len(c.dec) == c.n && !c.completed {
		c.completed = true
		c.members = c.members[:0]
		for k := 0; k < c.n; k++ {
			if c.dec[k] == 1 {
				c.members = append(c.members, k)
			}
		}
		if c.onComplete != nil {
			c.onComplete(ctx, append([]int(nil), c.members...))
		}
	}
}
