package acs

import (
	"testing"

	"asyncmediator/internal/async"
	"asyncmediator/internal/ba"
	"asyncmediator/internal/proto"
)

// runCoreSet builds n parties; readyAt[i] lists the candidates party i
// marks ready at start (nil = byzantine silent party).
func runCoreSet(t *testing.T, n, tf int, readyAt [][]int, sched async.Scheduler, seed int64) [][]int {
	t.Helper()
	outs := make([][]int, n)
	procs := make([]async.Process, n)
	coin := ba.SharedCoin{Seed: seed}
	for i := 0; i < n; i++ {
		if readyAt[i] == nil {
			procs[i] = silent{}
			continue
		}
		i := i
		h := proto.NewHost()
		cs := NewCoreSet(n, tf, coin, func(ctx *proto.Ctx, members []int) { outs[i] = members })
		if err := h.Register("cs", cs); err != nil {
			t.Fatal(err)
		}
		marks := readyAt[i]
		h.OnStart(func(env *async.Env) {
			for _, j := range marks {
				cs.MarkReady(h.Ctx(env, "cs"), j)
			}
		})
		procs[i] = h
	}
	if sched == nil {
		sched = &async.RoundRobinScheduler{}
	}
	rt, err := async.New(async.Config{Procs: procs, Scheduler: sched, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return outs
}

func allOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCoreSetAllReady(t *testing.T) {
	n, tf := 4, 1
	ready := make([][]int, n)
	for i := range ready {
		ready[i] = allOf(n)
	}
	outs := runCoreSet(t, n, tf, ready, nil, 1)
	for i, out := range outs {
		if out == nil {
			t.Fatalf("party %d incomplete", i)
		}
		if len(out) < n-tf {
			t.Fatalf("party %d core too small: %v", i, out)
		}
		if !equalInts(out, outs[0]) {
			t.Fatalf("cores differ: %v vs %v", out, outs[0])
		}
	}
}

func TestCoreSetAgreementUnderPartialEvidence(t *testing.T) {
	// Parties hold different local evidence; the agreed core must still be
	// common and of size >= n-t.
	for seed := int64(0); seed < 8; seed++ {
		n, tf := 4, 1
		ready := [][]int{
			{0, 1, 2},
			{0, 1, 3},
			{1, 2, 3},
			{0, 2, 3},
		}
		outs := runCoreSet(t, n, tf, ready, async.NewRandomScheduler(seed), seed)
		var ref []int
		for i, out := range outs {
			if out == nil {
				t.Fatalf("seed %d: party %d incomplete", seed, i)
			}
			if ref == nil {
				ref = out
			} else if !equalInts(out, ref) {
				t.Fatalf("seed %d: cores differ: %v vs %v", seed, out, ref)
			}
			if len(out) < n-tf {
				t.Fatalf("seed %d: core too small: %v", seed, out)
			}
		}
	}
}

func TestCoreSetSilentParty(t *testing.T) {
	// One silent party; the others must still agree on a core of >= n-t.
	n, tf := 4, 1
	ready := [][]int{
		allOf(n),
		allOf(n),
		allOf(n),
		nil, // silent
	}
	outs := runCoreSet(t, n, tf, ready, nil, 3)
	var ref []int
	for i := 0; i < 3; i++ {
		if outs[i] == nil {
			t.Fatalf("party %d incomplete", i)
		}
		if ref == nil {
			ref = outs[i]
		} else if !equalInts(outs[i], ref) {
			t.Fatal("cores differ")
		}
	}
	if len(ref) < n-tf {
		t.Fatalf("core too small: %v", ref)
	}
}

func TestCoreSetValidity(t *testing.T) {
	// A candidate nobody marks ready can only enter the core if BA
	// validity is violated — it must not be.
	n, tf := 4, 1
	ready := [][]int{
		{0, 1, 2},
		{0, 1, 2},
		{0, 1, 2},
		{0, 1, 2},
	}
	outs := runCoreSet(t, n, tf, ready, nil, 4)
	for _, out := range outs {
		for _, m := range out {
			if m == 3 {
				t.Fatalf("candidate 3 in core despite no honest evidence: %v", out)
			}
		}
	}
}

func TestCoreSetMarkReadyOutOfRange(t *testing.T) {
	cs := NewCoreSet(4, 1, ba.SharedCoin{Seed: 1}, nil)
	// Must not panic before Start or on bad indices.
	cs.MarkReady(nil, -1)
	cs.MarkReady(nil, 99)
	if _, done := cs.Completed(); done {
		t.Fatal("should not be complete")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
