// Quickstart: implement a mediator with asynchronous cheap talk.
//
// Part 1 plays a *mediator game*: a trusted mediator samples a correlated
// equilibrium of Chicken and privately recommends an action to each player.
//
// Part 2 removes the mediator: the n=5 players of the Section 6.4 lottery
// game jointly evaluate the mediator's circuit with asynchronous cheap
// talk (Theorem 4.1: n > 4k+4t with k=1, t=0), obtaining the same outcome
// distribution with no trusted party.
//
// Part 3 serves the mediator-free play: a session farm comes up on a
// loopback port and is driven end to end through the typed SDK
// (pkg/client) against the versioned /v1 API — create session, submit
// types, wait for the terminal snapshot — exactly what a remote consumer
// of a mediatord daemon would do.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"asyncmediator/api"
	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
	"asyncmediator/internal/service"
	"asyncmediator/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: trusted mediator for Chicken's correlated equilibrium ---
	g := game.Chicken()
	circ, err := mediator.SelectCircuit(2, game.ChickenCETable())
	if err != nil {
		return err
	}
	outcome := game.NewOutcome()
	for seed := int64(0); seed < 300; seed++ {
		prof, _, err := mediator.Run(mediator.Config{
			Game: g, Circuit: circ, Types: []game.Type{0, 0},
			Approach: game.ApproachAH, Seed: seed,
		})
		if err != nil {
			return err
		}
		outcome.Add(prof)
	}
	u := g.ExpectedUtility([]game.Type{0, 0}, outcome)
	fmt.Println("Chicken with a trusted mediator (correlated equilibrium):")
	fmt.Printf("  outcome distribution: %v\n", outcome)
	fmt.Printf("  expected utility: %.2f each (mixed equilibrium gives 4.67)\n\n", u[0])

	// --- Part 2: the same idea WITHOUT the mediator ---
	n, k := 5, 1
	lottery, err := game.Section64Game(n, k)
	if err != nil {
		return err
	}
	medCirc, err := mediator.Section64Circuit(n)
	if err != nil {
		return err
	}
	params := core.Params{
		Game: lottery, Circuit: medCirc,
		K: k, T: 0,
		Variant:  core.Exact41, // n=5 > 4k+4t=4
		Approach: game.ApproachAH,
		CoinSeed: 7,
	}
	ct := game.NewOutcome()
	types := make([]game.Type, n)
	for seed := int64(0); seed < 12; seed++ {
		prof, res, err := core.Run(core.RunConfig{
			Params: params, Types: types, Seed: seed, MaxSteps: 30_000_000,
		})
		if err != nil {
			return err
		}
		if res.Deadlocked {
			return fmt.Errorf("unexpected deadlock at seed %d", seed)
		}
		ct.Add(prof)
	}
	fmt.Println("Section 6.4 lottery implemented by cheap talk (no mediator, Theorem 4.1):")
	fmt.Printf("  outcome distribution: %v\n", ct)
	fmt.Printf("  every profile is unanimous: the %d players agreed on the lottery bit\n", n)
	fmt.Println("  (the bit was computed jointly; no player or scheduler ever saw it early)")

	// --- Part 3: the same play, served --------------------------------
	// Boot a farm on a loopback port and drive it purely through the
	// typed SDK: no hand-rolled HTTP, every body an api type.
	return serveAndPlay()
}

// serveAndPlay hosts a session farm in-process and round-trips one play
// through pkg/client, the way any external consumer of mediatord would.
func serveAndPlay() error {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		return err
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		return err
	}
	if err := c.Ready(ctx); err != nil {
		return err
	}
	// One call: create -> submit types -> long-poll to terminal. The
	// zero spec is the farm's default serving configuration (n=5, t=1,
	// Theorem 4.1 on the Section 6.4 game).
	view, err := c.PlaySession(ctx, api.SessionSpec{}, make([]int, 5))
	if err != nil {
		return err
	}
	if view.State != api.StateDone {
		return fmt.Errorf("served play ended %s: %s", view.State, view.Error)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Println("\nThe same play, served over the /v1 API (session farm + typed SDK):")
	fmt.Printf("  session %s: state=%s profile=%v in %d steps, %d messages\n",
		view.ID, view.State, view.Profile, view.Steps, view.MsgsSent)
	fmt.Printf("  farm stats: %d session(s) completed, %d worker(s)\n", st.Sessions, st.Workers)
	return nil
}
