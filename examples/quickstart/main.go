// Quickstart: implement a mediator with asynchronous cheap talk.
//
// Part 1 plays a *mediator game*: a trusted mediator samples a correlated
// equilibrium of Chicken and privately recommends an action to each player.
//
// Part 2 removes the mediator: the n=5 players of the Section 6.4 lottery
// game jointly evaluate the mediator's circuit with asynchronous cheap
// talk (Theorem 4.1: n > 4k+4t with k=1, t=0), obtaining the same outcome
// distribution with no trusted party.
package main

import (
	"fmt"
	"log"

	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: trusted mediator for Chicken's correlated equilibrium ---
	g := game.Chicken()
	circ, err := mediator.SelectCircuit(2, game.ChickenCETable())
	if err != nil {
		return err
	}
	outcome := game.NewOutcome()
	for seed := int64(0); seed < 300; seed++ {
		prof, _, err := mediator.Run(mediator.Config{
			Game: g, Circuit: circ, Types: []game.Type{0, 0},
			Approach: game.ApproachAH, Seed: seed,
		})
		if err != nil {
			return err
		}
		outcome.Add(prof)
	}
	u := g.ExpectedUtility([]game.Type{0, 0}, outcome)
	fmt.Println("Chicken with a trusted mediator (correlated equilibrium):")
	fmt.Printf("  outcome distribution: %v\n", outcome)
	fmt.Printf("  expected utility: %.2f each (mixed equilibrium gives 4.67)\n\n", u[0])

	// --- Part 2: the same idea WITHOUT the mediator ---
	n, k := 5, 1
	lottery, err := game.Section64Game(n, k)
	if err != nil {
		return err
	}
	medCirc, err := mediator.Section64Circuit(n)
	if err != nil {
		return err
	}
	params := core.Params{
		Game: lottery, Circuit: medCirc,
		K: k, T: 0,
		Variant:  core.Exact41, // n=5 > 4k+4t=4
		Approach: game.ApproachAH,
		CoinSeed: 7,
	}
	ct := game.NewOutcome()
	types := make([]game.Type, n)
	for seed := int64(0); seed < 12; seed++ {
		prof, res, err := core.Run(core.RunConfig{
			Params: params, Types: types, Seed: seed, MaxSteps: 30_000_000,
		})
		if err != nil {
			return err
		}
		if res.Deadlocked {
			return fmt.Errorf("unexpected deadlock at seed %d", seed)
		}
		ct.Add(prof)
	}
	fmt.Println("Section 6.4 lottery implemented by cheap talk (no mediator, Theorem 4.1):")
	fmt.Printf("  outcome distribution: %v\n", ct)
	fmt.Printf("  every profile is unanimous: the %d players agreed on the lottery bit\n", n)
	fmt.Println("  (the bit was computed jointly; no player or scheduler ever saw it early)")
	return nil
}
