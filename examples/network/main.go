// Network: the complete cheap-talk protocol over real TCP sockets.
//
// Four player processes — the same ones the deterministic experiments
// compile — form a localhost mesh (one goroutine per node, gob frames on
// the wire) and jointly evaluate the Section 6.4 lottery mediator under
// Theorem 4.2's parameters. No process ever sees the lottery bit before
// the joint opening; there is no trusted party anywhere.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"asyncmediator/internal/async"
	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
	"asyncmediator/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n, k := 4, 1
	g, err := game.Section64Game(n, k)
	if err != nil {
		return err
	}
	circ, err := mediator.Section64Circuit(n)
	if err != nil {
		return err
	}
	params := core.Params{
		Game: g, Circuit: circ, K: k, T: 0,
		Variant: core.Epsilon42, Approach: game.ApproachAH,
		Epsilon: 0.05, CoinSeed: 5,
	}

	addrs, err := freePorts(n)
	if err != nil {
		return err
	}
	nodes := make([]*wire.Node, n)
	for i := 0; i < n; i++ {
		pl, err := core.NewPlayer(params, i, 0)
		if err != nil {
			return err
		}
		node, err := wire.NewNode(wire.NodeConfig{
			Self: async.PID(i), Addrs: addrs, Proc: pl, Seed: int64(i) + 100,
		})
		if err != nil {
			return err
		}
		if err := node.Listen(); err != nil {
			return err
		}
		nodes[i] = node
	}

	fmt.Printf("4 players listening on %v\n", addrs)
	start := time.Now()
	moves := make([]game.Action, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			mv, ok, err := nodes[i].Run(60 * time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			if !ok {
				errs[i] = fmt.Errorf("no decision")
				return
			}
			moves[i] = mv.(game.Action)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		nodes[i].Stop()
		nodes[i].Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	fmt.Printf("joint lottery finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("decisions: %v\n", moves)
	for _, m := range moves {
		if m != moves[0] {
			return fmt.Errorf("players disagree: %v", moves)
		}
	}
	fmt.Printf("all players agreed on bit %d — computed jointly over TCP, no mediator\n", moves[0])
	return nil
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}
