// Punishment: the Section 6.4 counterexample, end to end.
//
// The game: actions {0, 1, ⊥}; everyone gets 1 if all play 0, 2 if all
// play 1, 1.1 if at least k+1 play ⊥ (the punishment), 0 otherwise. The
// mediator flips a fair coin b and tells everyone to play b: value 1.5.
//
// The paper's point: if the mediator ALSO leaks the hint a+b*i to player i
// (as the naive strategy does), a rational coalition {0, 1} pools its
// hints, learns b early, and — with a colluding relaxed scheduler — forces
// the punishment exactly when b=0 (payoff 1.1 beats the b=0 payoff 1).
// Coalition value: 0.5*1.1 + 0.5*2 = 1.55 > 1.5, so the equilibrium
// breaks. The minimally informative transform f(sigma_d) (Lemma 6.8)
// removes the hints and restores the equilibrium.
package main

import (
	"fmt"
	"log"

	"asyncmediator/internal/adversary"
	"asyncmediator/internal/async"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
)

const trials = 2000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n, k := 4, 1
	g, err := game.Section64Game(n, k)
	if err != nil {
		return err
	}

	leaky, err := coalitionValue(g, n, k, true)
	if err != nil {
		return err
	}
	fixed, err := coalitionValue(g, n, k, false)
	if err != nil {
		return err
	}

	fmt.Println("Section 6.4: punishment wills + information leakage (n=4, k=1)")
	fmt.Printf("  equilibrium value with any faithful mediator:        1.50\n")
	fmt.Printf("  coalition value vs LEAKY mediator (paper: 1.55):     %.3f\n", leaky)
	fmt.Printf("  coalition value vs MINIMALLY INFORMATIVE (f(σd)):    %.3f\n", fixed)
	if leaky > 1.5 && fixed <= 1.52 {
		fmt.Println("  => the naive mediator is NOT k-resilient; f(σd) is. QED (empirically)")
	}
	return nil
}

// coalitionValue plays the mediator game `trials` times with the rational
// coalition {0,1} pooling hints and a colluding relaxed scheduler, and
// returns the coalition's mean utility.
func coalitionValue(g *game.Game, n, k int, leaky bool) (float64, error) {
	sum := 0.0
	for seed := int64(0); seed < trials; seed++ {
		board := adversary.NewBoard()
		procs := make([]async.Process, n+1)
		for i := 0; i < n; i++ {
			if i <= 1 {
				procs[i] = &adversary.HintPooler{
					Mediator: async.PID(n), Index: i, Board: board, G: g, Will: game.Bottom,
				}
				continue
			}
			w := game.Bottom
			procs[i] = &mediator.HonestPlayer{Mediator: async.PID(n), Type: 0, G: g, Will: &w}
		}
		if leaky {
			procs[n] = mediator.NewLeaky(n)
		} else {
			circ, err := mediator.Section64Circuit(n)
			if err != nil {
				return 0, err
			}
			procs[n] = &mediator.CircuitMediator{
				N: n, Circ: circ, WaitFor: n - k, Rounds: 1, NumTypes: g.NumTypes,
			}
		}
		sched := &adversary.BaitScheduler{
			Base: &async.RoundRobinScheduler{}, Mediator: async.PID(n), Board: board,
		}
		rt, err := async.New(async.Config{
			Procs: procs, Players: n, Scheduler: sched, Seed: seed, Relaxed: true,
		})
		if err != nil {
			return 0, err
		}
		res, err := rt.Run()
		if err != nil {
			return 0, err
		}
		prof := mediator.ResolveMoves(g, make([]game.Type, n), res, game.ApproachAH)
		sum += g.Utility(make([]game.Type, n), prof)[0]
	}
	return sum / trials, nil
}
