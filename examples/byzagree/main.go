// Byzagree: game-theoretic Byzantine agreement (the paper's introductory
// example) without a mediator.
//
// Each of 4 players holds a private bit and wants everyone to announce the
// same value, preferably the majority of the true bits. With a trusted
// mediator this is trivial: send the bits in, get the majority back. Here
// the players run the compiled cheap-talk protocol instead (Theorem 4.2,
// n=4 > 3k+3t with k=1, t=0), evaluating the majority circuit jointly —
// and we run them on the goroutine-per-player ConcurrentRuntime, with
// real channel-based message passing and random delivery delays, rather
// than the deterministic scheduler used by the experiments.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"asyncmediator/internal/async"
	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n := 4
	g := game.ConsensusGame(n)
	circ, err := mediator.MajorityCircuit(n)
	if err != nil {
		return err
	}
	params := core.Params{
		Game: g, Circuit: circ, K: 1, T: 0,
		Variant: core.Epsilon42, Approach: game.ApproachAH,
		Epsilon: 0.05, CoinSeed: 11,
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	agree, onMajority := 0, 0
	rounds := 5
	for r := 0; r < rounds; r++ {
		types := g.SampleTypes(rng)
		procs := make([]async.Process, n)
		for i := 0; i < n; i++ {
			pl, err := core.NewPlayer(params, i, types[i])
			if err != nil {
				return err
			}
			procs[i] = pl
		}
		rt, err := async.NewConcurrent(async.ConcurrentConfig{
			Procs: procs, Seed: rng.Int63(), MaxDelay: 200 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		res, err := rt.Run(60 * time.Second)
		if err != nil {
			return err
		}
		prof := mediator.ResolveMoves(g, types, res, game.ApproachAH)
		u := g.Utility(types, prof)
		fmt.Printf("round %d: inputs=%v outputs=%v utility=%.0f\n", r+1, types, prof, u[0])
		if u[0] >= 1 {
			agree++
		}
		if u[0] == 2 {
			onMajority++
		}
	}
	fmt.Printf("\n%d/%d rounds agreed; %d/%d on the true majority\n", agree, rounds, onMajority, rounds)
	fmt.Println("(every round ran on goroutines + channels with randomized delivery)")
	return nil
}
