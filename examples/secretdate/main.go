// Secretdate: a Bayesian coordination game with private types ("where
// shall we meet, without telling each other our preference?").
//
// Each of two players privately prefers venue 0 or 1 (uniform). A mediator
// that sees both preferences recommends the common preference when they
// agree, and a fair coin flip otherwise — so meeting is guaranteed and a
// player's preference is revealed only to the extent implied by its own
// recommendation. We play the mediator game over its full type
// distribution and verify (a) the players always meet, (b) agreeing
// preferences always win, and (c) the talk is genuinely useful: without
// coordination, independent choices miss half the time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := game.MatchingGame()
	circ, err := mediator.MatchingCircuit()
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(42))
	met, preferred := 0, 0
	trials := 1000
	perType := map[string]*game.Outcome{}
	for s := 0; s < trials; s++ {
		types := g.SampleTypes(rng)
		prof, _, err := mediator.Run(mediator.Config{
			Game: g, Circuit: circ, Types: types,
			Approach: game.ApproachAH, Seed: int64(s),
		})
		if err != nil {
			return err
		}
		u := g.Utility(types, prof)
		if u[0] >= 1 {
			met++
		}
		if u[0] == 2 {
			preferred++
		}
		key := fmt.Sprintf("types=%d%d", types[0], types[1])
		if perType[key] == nil {
			perType[key] = game.NewOutcome()
		}
		perType[key].Add(prof)
	}
	fmt.Printf("met:        %4d / %d (must be all)\n", met, trials)
	fmt.Printf("preferred:  %4d / %d (agreeing types always; disagreeing ~always, one side wins)\n", preferred, trials)
	for _, key := range []string{"types=00", "types=01", "types=10", "types=11"} {
		if o := perType[key]; o != nil {
			fmt.Printf("  %s -> %v\n", key, o)
		}
	}
	if met != trials {
		return fmt.Errorf("players missed each other %d times", trials-met)
	}
	fmt.Println("\nthe mediator never reveals the other player's preference beyond the venue itself")
	return nil
}
