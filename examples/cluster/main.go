// Cluster mode: two mediatord daemons co-host one cheap-talk play.
//
// The paper replaces the trusted mediator with players talking over an
// asynchronous network — which only really means something when the
// honest players live in separate failure domains. This example boots
// two session farms in one process (each behind its own real HTTP
// listener, exactly the daemons `mediatord` would run on two machines),
// then plays the 4-player consensus game under Theorem 4.2: players 0
// and 1 on the coordinating daemon, players 2 and 3 co-hosted by the
// peer. The mesh forms over the hardened cluster transport (versioned
// handshake, per-peer write queues, reconnect with resend), and — to
// prove the hardening — every live transport connection is severed
// mid-play; the links replay their unacknowledged frames and the play
// still terminates with the unanimous outcome.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"asyncmediator/api"
	"asyncmediator/internal/service"
	"asyncmediator/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// daemon boots one farm on a loopback listener — one failure domain.
func daemon(name string) (*service.Service, string, func(), error) {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, "", nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%s serving on %s\n", name, url)
	stop := func() {
		_ = srv.Close()
		svc.Close()
	}
	return svc, url, stop, nil
}

func run() error {
	coord, coordURL, stopCoord, err := daemon("coordinator")
	if err != nil {
		return err
	}
	defer stopCoord()
	peer, peerURL, stopPeer, err := daemon("peer")
	if err != nil {
		return err
	}
	defer stopPeer()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c, err := client.New(coordURL)
	if err != nil {
		return err
	}

	// One play, two daemons: players 2 and 3 are assigned to the peer.
	spec := api.SessionSpec{
		Game: "consensus", N: 4, K: 1, Variant: "4.2",
		Peers: []api.PeerSpec{
			{Index: 2, Addr: peerURL},
			{Index: 3, Addr: peerURL},
		},
	}
	h, err := c.CreateSession(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("created cross-process session %s (players 0,1 local; 2,3 on the peer)\n", h.ID)
	if _, err := c.SubmitTypes(ctx, h.ID, []int{0, 0, 0, 0}); err != nil {
		return err
	}

	// Chaos while the play runs: sever every live transport connection
	// on both daemons. The sequence-numbered resend buffers make the
	// drops invisible to the protocol.
	done := make(chan struct{})
	go func() {
		defer close(done)
		dropped := 0
		for i := 0; i < 100; i++ {
			dropped += coord.DropClusterConns()
			dropped += peer.DropClusterConns()
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("chaos: severed %d live transport connections mid-play\n", dropped)
	}()

	v, err := c.WaitSession(ctx, h.ID)
	if err != nil {
		return err
	}
	<-done
	fmt.Printf("terminal state:   %s (deadlocked=%v)\n", v.State, v.Deadlock)
	fmt.Printf("joint profile:    %v (unanimous consensus on 0)\n", v.Profile)
	fmt.Printf("utilities:        %v\n", v.Utilities)
	fmt.Printf("wire traffic:     %d sent / %d delivered across both daemons\n", v.MsgsSent, v.MsgsDeliv)

	st, err := client.New(peerURL)
	if err != nil {
		return err
	}
	ps, err := st.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("peer daemon:      co-hosted %d cluster play(s)\n", ps.ClusterPlaysHosted)
	return nil
}
