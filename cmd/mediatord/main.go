// Command mediatord is the session-farm daemon: one long-running process
// hosting many concurrent cheap-talk plays behind the versioned /v1
// HTTP/JSON API (package api). It is the serving-layer counterpart of
// the paper's claim — the trusted mediator is replaced by a protocol,
// and this daemon is where thousands of such protocol sessions run side
// by side.
//
// Start the daemon (durable: sessions survive restarts in -data-dir):
//
//	mediatord -addr :8080 -workers 8 -data-dir /var/lib/mediatord -max-live-sessions 4096
//
// Drive it with the typed CLI (cmd/mediatorctl, built on pkg/client):
//
//	mediatorctl session create -n 5 -t 1 -variant 4.1 -types 0,0,0,0,0 -watch
//	mediatorctl session list -state done
//	mediatorctl experiment run e1 -trials 50
//	mediatorctl events tail
//	mediatorctl stats
//
// or raw /v1 (see api.Reference, printed by `mediatorctl apidoc`):
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"n":5,"t":1,"variant":"4.1"}'
//	curl -s -X POST localhost:8080/v1/sessions/s-000001/types -d '{"types":[0,0,0,0,0]}'
//	curl -s 'localhost:8080/v1/sessions/s-000001?wait=30s' # long-poll to terminal
//	curl -s 'localhost:8080/v1/sessions?state=done&limit=20'
//	curl -sN localhost:8080/v1/events                      # SSE state transitions
//	curl -s 'localhost:8080/v1/experiments/e1?trials=12'   # sync sweep
//	curl -s -X POST localhost:8080/v1/jobs -d '{"experiment":"e1","trials":50}'
//	curl -s 'localhost:8080/v1/jobs/x-000001?wait=30s'     # poll the async job
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/sessions/s-000001/trace      # stitched play trace
//	curl -s localhost:8080/metrics                         # Prometheus text format
//	curl -s localhost:8080/readyz                          # LB readiness gate
//
// Profiling: -pprof-listen binds net/http/pprof on its own listener so
// profiles never share the public API address:
//
//	mediatord -addr :8080 -pprof-listen 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Cluster mode: several daemons co-host one play, each running only its
// local players over the hardened transport (reconnect + resend,
// optional mutual TLS via -tls-cert/-tls-key/-tls-ca, listeners bound on
// -cluster-listen):
//
//	mediatord -addr :8080 -cluster-listen 10.0.0.1 &   # coordinator
//	mediatord -addr :8081 -cluster-listen 10.0.0.2 &   # peer
//	mediatorctl session create -game consensus -n 4 -k 1 -variant 4.2 \
//	    -peer 2=http://10.0.0.2:8081 -peer 3=http://10.0.0.2:8081 \
//	    -types 0,0,0,0 -watch
//
// Fleet telemetry: daemons gossip signed health summaries to each other
// and each one can answer for the whole fleet (every daemon gets the
// same sorted -fleet-peers table, its own -fleet-listen verbatim in it):
//
//	mediatord -addr :8080 -fleet-listen 127.0.0.1:9100 \
//	    -fleet-peers 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102 -fleet-floor 3 &
//	mediatorctl cluster status -watch        # live fleet table
//	mediatorctl events tail -kind fleet      # alert-rule transitions
//	curl -s localhost:8080/v1/cluster/fleet  # the raw FleetView
//
// Telemetry retention and SLOs: finished plays' traces are retained on
// a bounded ring (searchable at GET /v1/traces, surviving restarts with
// -data-dir), burn-rate objectives alert on the fleet event bus, and
// -profile-interval arms continuous pprof capture on the private
// listener:
//
//	mediatord -addr :8080 -data-dir /var/lib/mediatord \
//	    -trace-retention 8192 -slo phase:rbc:p99:250ms,variant:4.1:p95:1s \
//	    -pprof-listen 127.0.0.1:6060 -profile-interval 5m &
//	mediatorctl traces -phase rbc -min-ms 5     # search retained traces
//	mediatorctl slo                             # objective burn rates
//	mediatorctl obs profiles -pprof http://127.0.0.1:6060
//	curl -s 'localhost:8080/v1/traces?variant=4.1&limit=10'
//
// Or measure throughput without the HTTP layer:
//
//	mediatord -bench 512 -workers 8
//
// SIGINT/SIGTERM trigger a graceful shutdown: /readyz flips to 503 so
// load balancers drain, the listener stops, queued and in-flight
// sessions finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"asyncmediator/internal/service"
	"asyncmediator/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mediatord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mediatord", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 0, "concurrent session executors (0: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "session queue depth (0: default 1024)")
	seed := fs.Int64("seed", 1, "base seed for derived per-session seeds")
	maxN := fs.Int("maxn", 0, "largest per-session player count (0: default 64)")
	dataDir := fs.String("data-dir", "", "durable store directory; terminal sessions and experiment jobs survive restarts (empty: in-memory only)")
	maxLive := fs.Int("max-live-sessions", 0, "bound on in-memory sessions; terminal sessions beyond it evict to the store (0: unlimited)")
	snapEvery := fs.Int("snapshot-every", 0, "WAL records between compacted store snapshots (0: store default)")
	quiet := fs.Bool("quiet", false, "disable the per-request HTTP log")
	clusterListen := fs.String("cluster-listen", "", "host cluster-mode transport listeners bind and advertise; must be reachable from peer daemons (default 127.0.0.1)")
	joinTimeout := fs.Duration("join-timeout", 0, "per-peer deadline of the parallel cluster-join fan-out (0: 30s); start deadlines stay on the wire timeout")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for mutual TLS on cluster transport connections")
	tlsKey := fs.String("tls-key", "", "PEM private key paired with -tls-cert")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle both sides of every cluster connection verify against")
	readyWatermark := fs.Int("ready-watermark", 0, "queue depth at or above which GET /readyz sheds load with 503 (0: disabled)")
	fleetListen := fs.String("fleet-listen", "", "host:port this daemon's fleet-gossip listener binds; enables the fleet telemetry plane")
	fleetPeers := fs.String("fleet-peers", "", "comma-separated gossip address table of the WHOLE fleet, -fleet-listen included verbatim")
	advertiseURL := fs.String("advertise-url", "", "API base URL gossiped to peers so fleet views name this daemon (default: derived from -addr)")
	gossipInterval := fs.Duration("gossip-interval", 0, "fleet health-gossip period (0: 1s); suspicion is 3x, expiry 10x")
	fleetFloor := fs.Int("fleet-floor", 0, "healthy-daemon minimum (the n > 4k+3t bound); fewer fires the fleet_floor alert (0: disabled)")
	fleetSecret := fs.String("fleet-secret", "", "shared HMAC key signing gossip digests; unsigned digests are rejected when set")
	chaos := fs.Bool("chaos", false, "mount POST /v1/cluster/drop, the fault-injection hook severing live cluster connections (testing only)")
	pprofListen := fs.String("pprof-listen", "", "bind net/http/pprof on this separate address (empty: disabled; keep it off public interfaces)")
	noTrace := fs.Bool("no-trace", false, "disable per-play trace collection (GET /v1/sessions/{id}/trace answers 404)")
	traceRetention := fs.Int("trace-retention", 0, "finished-play traces retained for GET /v1/traces, oldest evicted first (0: default 4096; -1: disabled)")
	traceRetentionBytes := fs.Int64("trace-retention-bytes", 0, "byte bound of the retained-trace ring (0: default 64 MiB; -1: unbounded)")
	sloSpecs := fs.String("slo", "", "comma-separated SLO objectives, each <kind>:<selector>:p<quantile>:<threshold> (e.g. phase:rbc:p99:250ms,variant:4.1:p95:1s)")
	sloInterval := fs.Duration("slo-interval", 0, "SLO burn-rate evaluation tick (0: 5s); windows are 2 and 12 ticks")
	profileInterval := fs.Duration("profile-interval", 0, "continuous-profiling capture period; writes cpu+heap pprof files to a bounded on-disk ring (0: disabled)")
	profileDir := fs.String("profile-dir", "", "continuous-profiling ring directory (default <data-dir>/profiles)")
	profileKeep := fs.Int("profile-keep", 0, "profile files kept on the ring, oldest deleted first (0: default 32)")
	bench := fs.Int("bench", 0, "run a throughput benchmark of SESSIONS plays and exit")
	benchGame := fs.String("bench-game", "section64", "benchmark game: section64 or consensus")
	benchN := fs.Int("bench-n", 5, "benchmark players per session")
	benchK := fs.Int("bench-k", 0, "benchmark coalition bound")
	benchT := fs.Int("bench-t", 1, "benchmark malicious bound")
	benchVariant := fs.String("bench-variant", "4.1", "benchmark theorem variant")
	benchBackend := fs.String("bench-backend", "sim", "benchmark backend: sim or wire")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The continuous profiler writes periodic cpu+heap captures to a
	// bounded on-disk ring; the private pprof mux lists and serves them.
	var prof *telemetry.Profiler
	if *profileInterval > 0 {
		dir := *profileDir
		if dir == "" {
			if *dataDir == "" {
				return fmt.Errorf("-profile-interval needs -profile-dir (or -data-dir to derive it from)")
			}
			dir = filepath.Join(*dataDir, "profiles")
		}
		var err error
		prof, err = telemetry.StartProfiler(telemetry.ProfilerConfig{
			Dir:      dir,
			Interval: *profileInterval,
			MaxFiles: *profileKeep,
			Logf:     log.Printf,
		})
		if err != nil {
			return err
		}
		defer prof.Stop()
		log.Printf("mediatord: continuous profiling every %s to %s", *profileInterval, dir)
	}

	if *pprofListen != "" {
		// Explicit handlers on a private mux: importing net/http/pprof for
		// its handler funcs must not leak /debug/pprof onto any other mux.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if prof != nil {
			// GET /profiles (JSON list) and GET /profiles/{name} (download)
			// ride the same private listener as the interactive handlers.
			pm.Handle("/profiles", prof.Handler())
			pm.Handle("/profiles/", prof.Handler())
		}
		go func() {
			log.Printf("mediatord: pprof listening on %s", *pprofListen)
			if err := http.ListenAndServe(*pprofListen, pm); err != nil {
				log.Printf("mediatord: pprof listener failed: %v", err)
			}
		}()
	}

	if *bench > 0 {
		cfg := service.BenchConfig{
			Sessions:       *bench,
			Workers:        *workers,
			BaseSeed:       *seed,
			DisableTracing: *noTrace,
			Spec: service.Spec{
				Game: *benchGame, N: *benchN, K: *benchK, T: *benchT,
				Variant: *benchVariant, Backend: *benchBackend,
			},
		}
		res, err := service.Bench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Table(cfg).Render())
		return nil
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		BaseSeed:        *seed,
		MaxN:            *maxN,
		DataDir:         *dataDir,
		MaxLiveSessions: *maxLive,
		SnapshotEvery:   *snapEvery,
		ClusterListen:   *clusterListen,
		JoinTimeout:     *joinTimeout,
		TLSCert:         *tlsCert,
		TLSKey:          *tlsKey,
		TLSCA:           *tlsCA,
		ReadyWatermark:  *readyWatermark,
		EnableChaos:     *chaos,
		DisableTracing:  *noTrace,
		FleetListen:     *fleetListen,
		AdvertiseURL:    *advertiseURL,
		GossipInterval:  *gossipInterval,
		FleetFloor:      *fleetFloor,
		FleetSecret:     *fleetSecret,

		TraceRetention:      *traceRetention,
		TraceRetentionBytes: *traceRetentionBytes,
		SLOInterval:         *sloInterval,
	}
	if *sloSpecs != "" {
		for _, o := range strings.Split(*sloSpecs, ",") {
			if o = strings.TrimSpace(o); o != "" {
				cfg.SLOObjectives = append(cfg.SLOObjectives, o)
			}
		}
	}
	if *fleetPeers != "" {
		for _, p := range strings.Split(*fleetPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.FleetPeers = append(cfg.FleetPeers, p)
			}
		}
	}
	if cfg.AdvertiseURL == "" && cfg.FleetListen != "" {
		// Best-effort default: peers reach the API on this host at -addr's
		// port. Operators behind NAT or a LB should set -advertise-url.
		host, _, err := net.SplitHostPort(cfg.FleetListen)
		if err != nil || host == "" {
			host = "127.0.0.1"
		}
		port := *addr
		if _, p, err := net.SplitHostPort(*addr); err == nil {
			port = p
		} else {
			port = strings.TrimPrefix(port, ":")
		}
		cfg.AdvertiseURL = "http://" + net.JoinHostPort(host, port)
	}
	if !*quiet {
		cfg.RequestLog = log.Printf
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	if rec, ok := svc.StoreRecovery(); ok {
		log.Printf("mediatord: recovered %d sessions from %s (%d snapshot + %d wal records, %d torn bytes discarded)",
			svc.Stats().SessionsCreated, *dataDir, rec.SnapshotRecords, rec.WALRecords, rec.TornBytes)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("mediatord: serving session farm on %s", *addr)
	err = svc.ListenAndServe(ctx, *addr)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("mediatord: drained, bye")
	return nil
}
