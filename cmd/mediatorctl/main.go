// Command mediatorctl is the operator CLI for a mediatord session farm,
// built purely on the typed SDK (pkg/client) against the versioned /v1
// contract (package api) — it performs no hand-rolled HTTP.
//
//	mediatorctl -addr http://127.0.0.1:8080 <command> [flags] [args]
//
// Commands:
//
//	session create   create a play (-n -k -t -variant ...); -types submits
//	                 the profile too, -watch follows it to a terminal state,
//	                 repeatable -peer INDEX=ADDR co-hosts players on other
//	                 daemons (cluster mode); -place auto asks the fleet
//	                 scheduler to pick the daemons instead (-strategy,
//	                 -min-daemons tune it)
//	session get      one session snapshot (-wait long-polls to terminal)
//	session list     page sessions (-state -offset -limit; -all walks pages)
//	session types    submit a type profile: session types s-000001 0,0,0,0,0
//	session watch    follow one session to its terminal snapshot
//	session trace    render a terminal play's stitched trace: compact
//	                 per-phase timeline across daemons plus a slowest-phase
//	                 summary (-json for the raw TraceView)
//	experiment list  the catalog (e1..e8)
//	experiment run   run an experiment: async job by default (-no-wait to
//	                 just print the job handle), -sync for in-request
//	experiment get   one job snapshot (-wait long-polls to terminal)
//	stats            farm-wide aggregate statistics
//	traces           search the daemon's retained finished-play traces
//	                 (-variant -phase -min-ms -within -limit -cursor;
//	                 -fleet merges every gossiped peer's results,
//	                 peer-attributed; -json for the raw TracePage)
//	slo              burn-rate state of the configured SLO objectives,
//	                 exemplar traces included (-json for the raw SLOView)
//	obs              fleet observability summary: cluster link counters,
//	                 worker-pool load, durable-store health
//	obs profiles     list the continuous profiler's capture ring on the
//	                 daemon's private pprof listener (-pprof URL)
//	events tail      stream state transitions (-session -kind) as JSON lines
//	cluster status   fleet table from the daemon's gossip view: per-peer
//	                 liveness, load, and firing alerts (-watch refreshes,
//	                 -json prints the raw FleetView)
//	cluster plan     dry-run the placement scheduler: the assignment a
//	                 session create would get, without creating anything
//	cluster drop     sever live cluster transport conns (daemon runs -chaos)
//	ready            readiness probe (exit 1 when not ready)
//	apidoc           print the generated /v1 API reference (markdown)
//
// Every command prints JSON on stdout (session trace renders a text
// timeline unless given -json), so output composes with jq. The daemon
// address can also come from the MEDIATORD_ADDR environment variable;
// the flag wins.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"asyncmediator/api"
	"asyncmediator/pkg/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one CLI invocation; it is the testable entry point.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mediatorctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	defaultAddr := os.Getenv("MEDIATORD_ADDR")
	if defaultAddr == "" {
		defaultAddr = "http://127.0.0.1:8080"
	}
	addr := fs.String("addr", defaultAddr, "mediatord base URL (or MEDIATORD_ADDR)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall command deadline")
	retries := fs.Int("retries", 3, "retries for transient failures (backpressure, transport)")
	fs.Usage = func() { usage(stderr, fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(stderr, fs)
		return 2
	}

	if rest[0] == "apidoc" { // needs no daemon
		fmt.Fprint(stdout, api.Reference())
		return 0
	}

	c, err := client.New(*addr, client.WithRetries(*retries))
	if err != nil {
		fmt.Fprintln(stderr, "mediatorctl:", err)
		return 1
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	err = dispatch(ctx, c, rest, stdout, stderr)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errUsage):
		return 2
	default:
		fmt.Fprintln(stderr, "mediatorctl:", err)
		return 1
	}
}

// errUsage marks a malformed command line (exit code 2, message already
// printed).
var errUsage = errors.New("usage")

func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(w, "usage: mediatorctl [flags] <command> [command flags] [args]")
	fmt.Fprintln(w, "commands: session create|get|list|types|watch|trace, experiment list|run|get,")
	fmt.Fprintln(w, "          stats, traces, slo, obs [profiles], events tail,")
	fmt.Fprintln(w, "          cluster status|plan|drop, ready, apidoc")
	fmt.Fprintln(w, "flags:")
	fs.PrintDefaults()
}

// dispatch routes noun/verb to its handler.
func dispatch(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	bad := func(format string, a ...any) error {
		fmt.Fprintf(stderr, "mediatorctl: "+format+"\n", a...)
		return errUsage
	}
	switch args[0] {
	case "session":
		if len(args) < 2 {
			return bad("session needs a verb: create|get|list|types|watch|trace")
		}
		switch args[1] {
		case "create":
			return sessionCreate(ctx, c, args[2:], stdout, stderr)
		case "get":
			return sessionGet(ctx, c, args[2:], stdout, stderr)
		case "list":
			return sessionList(ctx, c, args[2:], stdout, stderr)
		case "types":
			return sessionTypes(ctx, c, args[2:], stdout, stderr)
		case "watch":
			return sessionWatch(ctx, c, args[2:], stdout, stderr)
		case "trace":
			return sessionTrace(ctx, c, args[2:], stdout, stderr)
		default:
			return bad("unknown session verb %q", args[1])
		}
	case "experiment":
		if len(args) < 2 {
			return bad("experiment needs a verb: list|run|get")
		}
		switch args[1] {
		case "list":
			cat, err := c.Catalog(ctx)
			if err != nil {
				return err
			}
			return printJSON(stdout, cat)
		case "run":
			return experimentRun(ctx, c, args[2:], stdout, stderr)
		case "get":
			return experimentGet(ctx, c, args[2:], stdout, stderr)
		default:
			return bad("unknown experiment verb %q", args[1])
		}
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(stdout, st)
	case "traces":
		return tracesSearch(ctx, c, args[1:], stdout, stderr)
	case "slo":
		return sloStatus(ctx, c, args[1:], stdout, stderr)
	case "obs":
		if len(args) >= 2 && args[1] == "profiles" {
			return obsProfiles(ctx, args[2:], stdout, stderr)
		}
		return obsSummary(ctx, c, stdout)
	case "events":
		if len(args) < 2 || args[1] != "tail" {
			return bad("events needs the tail verb")
		}
		return eventsTail(ctx, c, args[2:], stdout, stderr)
	case "cluster":
		if len(args) < 2 {
			return bad("cluster needs a verb: status|drop")
		}
		switch args[1] {
		case "status":
			return clusterStatus(ctx, c, args[2:], stdout, stderr)
		case "plan":
			return clusterPlan(ctx, c, args[2:], stdout, stderr)
		case "drop":
			n, err := c.ClusterDrop(ctx)
			if err != nil {
				return err
			}
			return printJSON(stdout, map[string]int{"dropped": n})
		default:
			return bad("unknown cluster verb %q (want status, plan, or drop)", args[1])
		}
	case "ready":
		if err := c.Ready(ctx); err != nil {
			return err
		}
		return printJSON(stdout, api.Readiness{Ready: true})
	default:
		return bad("unknown command %q", args[0])
	}
}

// printJSON renders one value as indented JSON on the command's stdout.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func sessionCreate(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session create", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var spec api.SessionSpec
	fs.StringVar(&spec.Game, "game", "", "game: section64 (default) or consensus")
	fs.IntVar(&spec.N, "n", 0, "players (0: default 5)")
	fs.IntVar(&spec.K, "k", 0, "coalition bound")
	fs.IntVar(&spec.T, "t", 0, "malicious bound (0 with k=0: default t=1)")
	fs.StringVar(&spec.Variant, "variant", "", "theorem: 4.1 (default), 4.2, 4.4, 4.5")
	fs.StringVar(&spec.Scheduler, "scheduler", "", "sim scheduler: roundrobin (default), random, fifo")
	fs.StringVar(&spec.Backend, "backend", "", "backend: sim (default) or wire")
	fs.IntVar(&spec.MaxSteps, "max-steps", 0, "simulated step bound (0: default)")
	fs.Func("peer", "host player INDEX on the daemon at ADDR, as INDEX=ADDR (repeatable; implies the wire backend)", func(v string) error {
		idx, addr, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want INDEX=ADDR, got %q", v)
		}
		i, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil {
			return fmt.Errorf("bad player index in %q", v)
		}
		spec.Peers = append(spec.Peers, api.PeerSpec{Index: i, Addr: strings.TrimSpace(addr)})
		return nil
	})
	place := fs.String("place", "", `placement mode: "auto" lets the fleet scheduler pick the daemons (implies the wire backend)`)
	strategy := fs.String("strategy", "", "auto placement strategy: spread (default), pack, or strict (implies -place auto)")
	minDaemons := fs.Int("min-daemons", 0, "refuse auto placements using fewer healthy daemons (implies -place auto; 0: no floor)")
	seed := fs.String("seed", "", "session seed (empty: derived deterministically)")
	types := fs.String("types", "", "comma-separated type profile; submits after create")
	watch := fs.Bool("watch", false, "after submitting types, wait for the terminal snapshot")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	seedp, err := parseSeed(*seed, stderr)
	if err != nil {
		return err
	}
	spec.Seed = seedp
	if *place != "" || *strategy != "" || *minDaemons > 0 {
		spec.Placement = &api.PlacementSpec{Mode: *place, Strategy: *strategy, MinDaemons: *minDaemons}
		if spec.Placement.Mode == "" {
			spec.Placement.Mode = api.PlacementModeAuto
		}
	}
	if *watch && *types == "" {
		fmt.Fprintln(stderr, "mediatorctl: -watch needs -types")
		return errUsage
	}
	h, err := c.CreateSession(ctx, spec)
	if err != nil {
		return err
	}
	if *types == "" {
		return printJSON(stdout, h)
	}
	profile, err := parseTypes(*types)
	if err != nil {
		fmt.Fprintln(stderr, "mediatorctl:", err)
		return errUsage
	}
	if h, err = c.SubmitTypes(ctx, h.ID, profile); err != nil {
		return err
	}
	if !*watch {
		return printJSON(stdout, h)
	}
	v, err := c.WaitSession(ctx, h.ID)
	if err != nil {
		return err
	}
	return printJSON(stdout, v)
}

func sessionGet(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session get", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wait := fs.Bool("wait", false, "long-poll until the session is terminal")
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		fmt.Fprintln(stderr, "mediatorctl: session get needs exactly one session id")
		return errUsage
	}
	var v api.SessionView
	if *wait {
		v, err = c.WaitSession(ctx, pos[0])
	} else {
		v, err = c.GetSession(ctx, pos[0])
	}
	if err != nil {
		return err
	}
	return printJSON(stdout, v)
}

func sessionList(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	state := fs.String("state", "", "filter by lifecycle state")
	offset := fs.Int("offset", 0, "page cursor")
	limit := fs.Int("limit", 0, "page size (0: server default)")
	all := fs.Bool("all", false, "walk every page (ignores -offset)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if *all {
		var views []api.SessionView
		err := c.EachSession(ctx, client.ListSessionsOptions{State: *state, Limit: *limit}, func(v api.SessionView) error {
			views = append(views, v)
			return nil
		})
		if err != nil {
			return err
		}
		return printJSON(stdout, views)
	}
	page, err := c.ListSessions(ctx, client.ListSessionsOptions{State: *state, Offset: *offset, Limit: *limit})
	if err != nil {
		return err
	}
	return printJSON(stdout, page)
}

func sessionTypes(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session types", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 2 {
		fmt.Fprintln(stderr, "mediatorctl: usage: session types <id> <t0,t1,...>")
		return errUsage
	}
	profile, err := parseTypes(pos[1])
	if err != nil {
		fmt.Fprintln(stderr, "mediatorctl:", err)
		return errUsage
	}
	h, err := c.SubmitTypes(ctx, pos[0], profile)
	if err != nil {
		return err
	}
	return printJSON(stdout, h)
}

func sessionWatch(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		fmt.Fprintln(stderr, "mediatorctl: session watch needs exactly one session id")
		return errUsage
	}
	v, err := c.WaitSession(ctx, pos[0])
	if err != nil {
		return err
	}
	return printJSON(stdout, v)
}

func sessionTrace(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("session trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	raw := fs.Bool("json", false, "print the raw TraceView instead of the rendered timeline")
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		fmt.Fprintln(stderr, "mediatorctl: session trace needs exactly one session id")
		return errUsage
	}
	v, err := c.GetSessionTrace(ctx, pos[0])
	if err != nil {
		return err
	}
	if *raw {
		return printJSON(stdout, v)
	}
	renderTrace(stdout, v)
	return nil
}

// traceBarWidth is the character width of the rendered timeline bars.
const traceBarWidth = 28

// renderTrace prints a TraceView as a compact human timeline: one row
// per span with a proportional bar over the play's full window, then
// a slowest-phase summary aggregated across origins.
func renderTrace(w io.Writer, v api.TraceView) {
	origins := map[string]bool{}
	var lo, hi int64
	for i, s := range v.Spans {
		origins[s.Origin] = true
		if i == 0 || s.StartUS < lo {
			lo = s.StartUS
		}
		if end := spanEnd(s); end > hi {
			hi = end
		}
	}
	fmt.Fprintf(w, "trace %s: %d spans, %d origin(s), window %s\n",
		v.TraceID, len(v.Spans), len(origins), fmtUS(hi-lo))
	if v.Dropped > 0 {
		fmt.Fprintf(w, "warning: %d span(s) dropped by the bounded trace buffer\n", v.Dropped)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ORIGIN\tPHASE\tSTART\tDUR\tCOUNT\tTIMELINE\tATTRS")
	for _, s := range v.Spans {
		fmt.Fprintf(tw, "%s\t%s\t+%s\t%s\t%d\t%s\t%s\n",
			s.Origin, s.Name, fmtUS(s.StartUS-lo), fmtUS(spanEnd(s)-s.StartUS),
			s.Count, traceBar(s, lo, hi), fmtAttrs(s.Attrs))
	}
	tw.Flush()

	// Slowest phases: total span time by name, across origins.
	type phase struct {
		name  string
		total int64
		spans int
	}
	byName := map[string]*phase{}
	for _, s := range v.Spans {
		p := byName[s.Name]
		if p == nil {
			p = &phase{name: s.Name}
			byName[s.Name] = p
		}
		p.total += spanEnd(s) - s.StartUS
		p.spans++
	}
	phases := make([]*phase, 0, len(byName))
	for _, p := range byName {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].total != phases[j].total {
			return phases[i].total > phases[j].total
		}
		return phases[i].name < phases[j].name
	})
	fmt.Fprintln(w, "slowest phases:")
	for i, p := range phases {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "  %-12s %10s  (%d span(s))\n", p.name, fmtUS(p.total), p.spans)
	}
}

// spanEnd is the span's end offset; an end-less span (still open when
// snapshotted, or a pure counter) renders as zero-width at its start.
func spanEnd(s api.TraceSpan) int64 {
	if s.EndUS < s.StartUS {
		return s.StartUS
	}
	return s.EndUS
}

// traceBar renders a span's position within [lo,hi] as a fixed-width
// bar: '#' over the span's extent, '.' elsewhere.
func traceBar(s api.TraceSpan, lo, hi int64) string {
	cells := make([]byte, traceBarWidth)
	for i := range cells {
		cells[i] = '.'
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	from := int(int64(traceBarWidth) * (s.StartUS - lo) / span)
	to := int(int64(traceBarWidth) * (spanEnd(s) - lo) / span)
	if from >= traceBarWidth {
		from = traceBarWidth - 1
	}
	if to >= traceBarWidth {
		to = traceBarWidth - 1
	}
	for i := from; i <= to; i++ {
		cells[i] = '#'
	}
	return string(cells)
}

// fmtUS renders a microsecond offset as a human duration.
func fmtUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

// fmtAttrs renders span attributes as sorted k=v pairs.
func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}

// obsSummary prints the fleet-observability slice of /v1/stats: the
// cluster link counters, worker-pool load, and durable-store health
// that the full stats dump buries under play statistics. A daemon that
// never clustered is said so explicitly rather than silently omitted.
func obsSummary(ctx context.Context, c *client.Client, stdout io.Writer) error {
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	clusterNote := ""
	if st.Cluster == nil {
		clusterNote = "no cluster transport (this daemon has not clustered)"
	}
	return printJSON(stdout, struct {
		UptimeSeconds      float64               `json:"uptime_seconds"`
		SessionsLive       int                   `json:"sessions_live"`
		QueueDepth         int                   `json:"queue_depth"`
		ShedIntervals      int64                 `json:"shed_intervals,omitempty"`
		ClusterPlaysHosted int64                 `json:"cluster_plays_hosted,omitempty"`
		Cluster            *api.ClusterLinkStats `json:"cluster,omitempty"`
		ClusterNote        string                `json:"cluster_note,omitempty"`
		Pool               *api.PoolStats        `json:"pool,omitempty"`
		Store              *api.StoreStats       `json:"store,omitempty"`
	}{
		UptimeSeconds:      st.UptimeSeconds,
		SessionsLive:       st.SessionsLive,
		QueueDepth:         st.QueueDepth,
		ShedIntervals:      st.ShedIntervals,
		ClusterPlaysHosted: st.ClusterPlaysHosted,
		Cluster:            st.Cluster,
		ClusterNote:        clusterNote,
		Pool:               st.Pool,
		Store:              st.Store,
	})
}

// tracesSearch implements `mediatorctl traces`: search the daemon's
// retained-trace ring, optionally fanned out fleet-wide.
func tracesSearch(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	fs.SetOutput(stderr)
	variant := fs.String("variant", "", "keep only this theorem variant")
	phase := fs.String("phase", "", "keep only traces that spent time in this phase (rbc, ba, avss.share, ...)")
	minMS := fs.Float64("min-ms", 0, "keep only traces at/above this many milliseconds (the phase's time when -phase is set)")
	within := fs.Duration("within", 0, "keep only traces finished within this window, e.g. 10m (0: all)")
	cursor := fs.Int64("cursor", 0, "resume pagination from a previous page's next_cursor")
	limit := fs.Int("limit", 0, "page size (0: server default)")
	fleet := fs.Bool("fleet", false, "fan the query out to every healthy gossiped peer and merge, peer-attributed")
	raw := fs.Bool("json", false, "print the raw TracePage instead of the rendered table")
	if _, err := parseMixed(fs, args); err != nil {
		return err
	}
	o := client.TracesOptions{
		Variant: *variant, Phase: *phase, MinMS: *minMS,
		Cursor: *cursor, Limit: *limit, Fleet: *fleet,
	}
	if *within > 0 {
		o.Since = time.Now().Add(-*within).UnixMilli()
	}
	page, err := c.Traces(ctx, o)
	if err != nil {
		return err
	}
	if *raw {
		return printJSON(stdout, page)
	}
	renderTraces(stdout, page, *phase)
	return nil
}

// renderTraces prints a TracePage as a table, newest first, with a
// pagination footer. When the search filtered on a phase, that phase's
// folded time gets its own column next to the end-to-end duration.
func renderTraces(w io.Writer, page api.TracePage, phase string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	hdr := "SESSION\tTRACE\tVARIANT\tSTATE\tDUR"
	if phase != "" {
		hdr += "\t" + strings.ToUpper(phase)
	}
	hdr += "\tAGE\tSPANS"
	if page.Daemons > 1 {
		hdr += "\tDAEMON"
	}
	fmt.Fprintln(tw, hdr)
	for _, t := range page.Traces {
		variant := t.Variant
		if variant == "" {
			variant = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s", t.Session, t.TraceID, variant, t.State, fmtMS(t.DurationMS))
		if phase != "" {
			fmt.Fprintf(tw, "\t%s", fmtMS(t.PhaseMS[phase]))
		}
		age := time.Since(time.UnixMilli(t.FinishedUnixMS)).Round(time.Second)
		fmt.Fprintf(tw, "\t%s\t%d", age, t.Spans)
		if page.Daemons > 1 {
			daemon := t.Daemon
			if daemon == "" {
				daemon = "(local)"
			}
			fmt.Fprintf(tw, "\t%s", daemon)
		}
		fmt.Fprintln(tw)
	}
	_ = tw.Flush()
	fmt.Fprintf(w, "%d of %d matching trace(s)", len(page.Traces), page.Total)
	if page.Daemons > 1 {
		fmt.Fprintf(w, " across %d daemon(s)", page.Daemons)
	}
	if page.NextCursor > 0 {
		fmt.Fprintf(w, "; next page: -cursor %d", page.NextCursor)
	}
	fmt.Fprintln(w)
	for _, e := range page.Errors {
		fmt.Fprintf(w, "unreachable: %s\n", e)
	}
}

// fmtMS renders a millisecond duration compactly ("0.42ms", "1.2s").
func fmtMS(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	return fmt.Sprintf("%.2fms", ms)
}

// sloStatus implements `mediatorctl slo`: the rolling burn-rate state
// of every configured objective.
func sloStatus(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	raw := fs.Bool("json", false, "print the raw SLOView instead of the rendered table")
	if _, err := parseMixed(fs, args); err != nil {
		return err
	}
	v, err := c.SLO(ctx)
	if err != nil {
		return err
	}
	if *raw {
		return printJSON(stdout, v)
	}
	tick := time.Duration(v.IntervalMS) * time.Millisecond
	fmt.Fprintf(stdout, "slo: %d objective(s); windows %s short / %s long (tick %s)\n",
		len(v.Objectives), tick*time.Duration(v.ShortWindow), tick*time.Duration(v.LongWindow), tick)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "OBJECTIVE\tSHORT\tLONG\tSAMPLES\tSTATE\tEXEMPLAR")
	for _, o := range v.Objectives {
		state := "ok"
		if o.Firing {
			state = "FIRING"
		}
		exemplar := "-"
		if o.ExemplarSession != "" {
			exemplar = o.ExemplarSession
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%d\t%s\t%s\n",
			o.Objective, o.ShortBurn, o.LongBurn, o.Samples, state, exemplar)
	}
	return tw.Flush()
}

// obsProfiles implements `mediatorctl obs profiles`: list the continuous
// profiler's on-disk capture ring. The profiler serves on the daemon's
// private pprof listener, so this builds its own client against the
// -pprof base URL rather than reusing the API-address client.
func obsProfiles(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("obs profiles", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pprofAddr := fs.String("pprof", "http://127.0.0.1:6060", "the daemon's private -pprof-listen base URL")
	raw := fs.Bool("json", false, "print the raw ProfileList instead of the rendered table")
	if _, err := parseMixed(fs, args); err != nil {
		return err
	}
	pc, err := client.New(*pprofAddr)
	if err != nil {
		return err
	}
	list, err := pc.Profiles(ctx)
	if err != nil {
		return err
	}
	if *raw {
		return printJSON(stdout, list)
	}
	fmt.Fprintf(stdout, "profiles: %d capture(s) in %s, every %s; fetch via GET %s/profiles/{name}\n",
		len(list.Profiles), list.Dir, time.Duration(list.IntervalMS)*time.Millisecond, *pprofAddr)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tKIND\tSIZE\tAGE")
	for _, p := range list.Profiles {
		age := time.Since(time.UnixMilli(p.CreatedUnixMS)).Round(time.Second)
		fmt.Fprintf(tw, "%s\t%s\t%dB\t%s\n", p.Name, p.Kind, p.SizeBytes, age)
	}
	return tw.Flush()
}

// clusterStatus renders the daemon's fleet view as a live operator
// table: one row per fleet slot with liveness, generation, and load.
func clusterStatus(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	raw := fs.Bool("json", false, "print the raw FleetView instead of the table")
	watch := fs.Duration("watch", 0, "refresh the table every interval until interrupted (e.g. -watch 1s)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	for {
		v, err := c.FleetStatus(ctx)
		if err != nil {
			return err
		}
		if *raw {
			if err := printJSON(stdout, v); err != nil {
				return err
			}
		} else {
			renderFleet(stdout, v)
		}
		if *watch <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*watch):
		}
		fmt.Fprintln(stdout)
	}
}

// renderFleet prints one FleetView as a header line, a tabwriter table,
// and the firing alerts.
func renderFleet(w io.Writer, v api.FleetView) {
	fmt.Fprintf(w, "fleet: %d/%d healthy", v.Healthy, v.Size)
	if v.Suspect > 0 {
		fmt.Fprintf(w, ", %d suspect", v.Suspect)
	}
	if v.Expired > 0 {
		fmt.Fprintf(w, ", %d expired", v.Expired)
	}
	if v.Unknown > 0 {
		fmt.Fprintf(w, ", %d unknown", v.Unknown)
	}
	if v.Floor > 0 {
		fmt.Fprintf(w, " (floor %d)", v.Floor)
	}
	fmt.Fprintf(w, "; gossip every %s, %d rounds, %d entries merged\n",
		time.Duration(v.GossipIntervalMS)*time.Millisecond, v.GossipRounds, v.EntriesMerged)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "IDX\tADDR\tSTATE\tGEN\tSILENT\tQUEUE\tSHED\tSESSIONS\tSTORE\tREDIALS\tP99")
	for _, p := range v.Peers {
		addr := p.Addr
		if addr == "" {
			addr = "-"
		}
		if p.Self {
			addr += " (self)"
		}
		shed := "-"
		if p.Shedding {
			shed = "yes"
		}
		silent := "-"
		if p.State != api.FleetPeerUnknown {
			silent = (time.Duration(p.SilentForMS) * time.Millisecond).String()
		}
		p99 := "-"
		if p.PhaseP99MS > 0 {
			p99 = fmt.Sprintf("%.2fms", p.PhaseP99MS)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%s\t%d\t%s\t%d\t%d\t%d\t%s\n",
			p.Index, addr, p.State, p.Gen, silent, p.QueueDepth, shed,
			p.LiveSessions, p.StoreKeys, p.Redials, p99)
	}
	tw.Flush()
	for _, a := range v.Alerts {
		fmt.Fprintf(w, "ALERT %s: %s\n", a.Rule, a.Message)
	}
}

// clusterPlan dry-runs the fleet placement scheduler: the assignment a
// session created with this spec would get, without creating anything.
func clusterPlan(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cluster plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var spec api.SessionSpec
	fs.StringVar(&spec.Game, "game", "", "game: section64 (default) or consensus")
	fs.IntVar(&spec.N, "n", 0, "players (0: default 5)")
	fs.IntVar(&spec.K, "k", 0, "coalition bound")
	fs.IntVar(&spec.T, "t", 0, "malicious bound (0 with k=0: default t=1)")
	fs.StringVar(&spec.Variant, "variant", "", "theorem: 4.1 (default), 4.2, 4.4, 4.5")
	strategy := fs.String("strategy", "", "placement strategy: spread (default), pack, or strict")
	minDaemons := fs.Int("min-daemons", 0, "refuse placements using fewer healthy daemons (0: no floor)")
	raw := fs.Bool("json", false, "print the raw ClusterPlanResponse instead of the table")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	spec.Placement = &api.PlacementSpec{Mode: api.PlacementModeAuto, Strategy: *strategy, MinDaemons: *minDaemons}
	resp, err := c.ClusterPlan(ctx, api.ClusterPlanRequest{Spec: spec})
	if err != nil {
		return err
	}
	if *raw {
		return printJSON(stdout, resp)
	}
	renderPlan(stdout, resp)
	return nil
}

// renderPlan prints one placement dry-run as a header line plus a
// tabwriter table, one row per daemon in the assignment.
func renderPlan(w io.Writer, resp api.ClusterPlanResponse) {
	pl := resp.Placement
	fmt.Fprintf(w, "plan: strategy=%s floor=%d daemons=%d healthy=%d\n",
		pl.Strategy, pl.Floor, pl.Daemons, resp.HealthyDaemons)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ADDR\tROLE\tPLAYERS")
	for _, a := range pl.Assignments {
		addr := a.Addr
		if addr == "" {
			addr = "-"
		}
		role := "peer"
		if a.Self {
			role = "coordinator"
		}
		players := make([]string, len(a.Players))
		for i, p := range a.Players {
			players[i] = strconv.Itoa(p)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", addr, role, strings.Join(players, ","))
	}
	tw.Flush()
	if pl.Degraded != "" {
		fmt.Fprintf(w, "DEGRADED: %s\n", pl.Degraded)
	}
}

func experimentRun(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiment run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	trials := fs.Int("trials", 0, "trials per estimate (0: server quick default)")
	seed := fs.String("seed", "", "base seed (empty: server default)")
	maxSteps := fs.Int("max-steps", 0, "per-run step bound (0: server default)")
	sync := fs.Bool("sync", false, "run synchronously in the request instead of as a job")
	noWait := fs.Bool("no-wait", false, "async only: print the job handle instead of waiting")
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		fmt.Fprintln(stderr, "mediatorctl: experiment run needs exactly one experiment name (e1..e8)")
		return errUsage
	}
	name := pos[0]
	seedp, err := parseSeed(*seed, stderr)
	if err != nil {
		return err
	}
	if *sync {
		tab, err := c.RunExperiment(ctx, name, client.RunOptions{Trials: *trials, Seed: seedp, MaxSteps: *maxSteps})
		if err != nil {
			return err
		}
		return printJSON(stdout, tab)
	}
	req := api.ExperimentRequest{Experiment: name, Trials: *trials, Seed: seedp, MaxSteps: *maxSteps}
	if *noWait {
		h, err := c.CreateJob(ctx, req)
		if err != nil {
			return err
		}
		return printJSON(stdout, h)
	}
	v, err := c.RunJob(ctx, req)
	if err != nil {
		return err
	}
	return printJSON(stdout, v)
}

func experimentGet(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiment get", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wait := fs.Bool("wait", false, "long-poll until the job is terminal")
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		fmt.Fprintln(stderr, "mediatorctl: experiment get needs exactly one job id (x-...)")
		return errUsage
	}
	var v api.ExperimentJobView
	if *wait {
		v, err = c.WaitJob(ctx, pos[0])
	} else {
		v, err = c.GetJob(ctx, pos[0])
	}
	if err != nil {
		return err
	}
	return printJSON(stdout, v)
}

func eventsTail(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("events tail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	session := fs.String("session", "", "narrow to one session id")
	kind := fs.String("kind", "", "narrow to one namespace: session, experiment, or fleet")
	count := fs.Int("n", 0, "exit after N events (0: stream until interrupted)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	stream, err := c.StreamEvents(ctx, client.StreamOptions{Session: *session, Kind: *kind})
	if err != nil {
		return err
	}
	defer stream.Close()
	enc := json.NewEncoder(stdout)
	if err := enc.Encode(stream.Hello()); err != nil {
		return err
	}
	for seen := 0; *count == 0 || seen < *count; seen++ {
		e, err := stream.Next()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) {
				return nil // interrupted or farm shut down: a clean end of tail
			}
			return err
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// parseMixed parses a subcommand line that may put positional arguments
// before the flags (the natural "experiment run e8 -trials 2" order):
// leading non-flag tokens are collected, the remainder is flag-parsed,
// and trailing positionals are appended.
func parseMixed(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		pos = append(pos, args[0])
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	return append(pos, fs.Args()...), nil
}

// parseSeed parses an optional -seed flag value ("" means nil: let the
// server pick).
func parseSeed(s string, stderr io.Writer) (*int64, error) {
	if s == "" {
		return nil, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fmt.Fprintf(stderr, "mediatorctl: bad -seed %q\n", s)
		return nil, errUsage
	}
	return &v, nil
}

// parseTypes parses a comma-separated type profile ("0,1,0").
func parseTypes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad type profile %q (want comma-separated integers)", s)
		}
		out = append(out, v)
	}
	return out, nil
}
