package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"asyncmediator/api"
	"asyncmediator/internal/service"
)

// ctlFarm boots a farm behind httptest and returns a runner that invokes
// the CLI against it, capturing stdout.
func ctlFarm(t *testing.T) (*service.Service, func(args ...string) (string, int)) {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, func(args ...string) (string, int) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		code := run(ctx, append([]string{"-addr", ts.URL}, args...), &stdout, &stderr)
		if stderr.Len() > 0 {
			t.Logf("stderr: %s", stderr.String())
		}
		return stdout.String(), code
	}
}

// TestCtlSessionLifecycle is the CLI acceptance path CI also drives:
// session create -> types -> watch to a terminal snapshot.
func TestCtlSessionLifecycle(t *testing.T) {
	_, ctl := ctlFarm(t)

	out, code := ctl("session", "create", "-n", "4", "-k", "1", "-variant", "4.2")
	if code != 0 {
		t.Fatalf("create exit %d: %s", code, out)
	}
	var h api.Handle
	if err := json.Unmarshal([]byte(out), &h); err != nil || h.ID == "" || h.State != api.StateAwaitingTypes {
		t.Fatalf("create output %q: %v", out, err)
	}

	out, code = ctl("session", "types", h.ID, "0,0,0,0")
	if code != 0 {
		t.Fatalf("types exit %d: %s", code, out)
	}

	out, code = ctl("session", "watch", h.ID)
	if code != 0 {
		t.Fatalf("watch exit %d: %s", code, out)
	}
	var v api.SessionView
	if err := json.Unmarshal([]byte(out), &v); err != nil {
		t.Fatalf("watch output %q: %v", out, err)
	}
	if v.State != api.StateDone || len(v.Profile) != 4 {
		t.Fatalf("watched view %+v", v)
	}

	// get and list see the same session.
	out, code = ctl("session", "get", h.ID)
	if code != 0 || !strings.Contains(out, h.ID) {
		t.Fatalf("get exit %d: %s", code, out)
	}
	out, code = ctl("session", "list", "-state", "done")
	if code != 0 {
		t.Fatalf("list exit %d: %s", code, out)
	}
	var page api.SessionPage
	if err := json.Unmarshal([]byte(out), &page); err != nil || page.Total != 1 {
		t.Fatalf("list output %q: %v", out, err)
	}

	// stats reflect the play.
	out, code = ctl("stats")
	if code != 0 {
		t.Fatalf("stats exit %d: %s", code, out)
	}
	var st api.Stats
	if err := json.Unmarshal([]byte(out), &st); err != nil || st.Sessions != 1 {
		t.Fatalf("stats output %q: %v", out, err)
	}
}

// TestCtlCreateTypesWatchOneShot covers the -types/-watch convenience
// and the events tail.
func TestCtlCreateTypesWatchOneShot(t *testing.T) {
	_, ctl := ctlFarm(t)

	out, code := ctl("session", "create", "-types", "0,0,0,0,0", "-watch")
	if code != 0 {
		t.Fatalf("one-shot exit %d: %s", code, out)
	}
	var v api.SessionView
	if err := json.Unmarshal([]byte(out), &v); err != nil || v.State != api.StateDone || len(v.Profile) != 5 {
		t.Fatalf("one-shot output %q: %v", out, err)
	}

	// events tail -n sees the finished session's history (hello + at
	// least one line); run a second play while tailing is racy in a test,
	// so tail the next play's four transitions.
	done := make(chan struct{})
	var tailOut string
	var tailCode int
	go func() {
		defer close(done)
		tailOut, tailCode = ctl("events", "tail", "-kind", "session", "-n", "4")
	}()
	time.Sleep(200 * time.Millisecond) // let the subscription open
	if out, code := ctl("session", "create", "-types", "0,0,0,0,0", "-watch"); code != 0 {
		t.Fatalf("second play exit %d: %s", code, out)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("events tail did not finish")
	}
	if tailCode != 0 {
		t.Fatalf("tail exit %d: %s", tailCode, tailOut)
	}
	lines := strings.Split(strings.TrimSpace(tailOut), "\n")
	if len(lines) != 5 { // hello + 4 transitions
		t.Fatalf("tail lines %d: %s", len(lines), tailOut)
	}
	var last api.Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || !last.Terminal {
		t.Fatalf("last tail line %q: %v", lines[len(lines)-1], err)
	}
}

// TestCtlExperiments covers catalog, sync run, async run, and job get.
func TestCtlExperiments(t *testing.T) {
	_, ctl := ctlFarm(t)

	out, code := ctl("experiment", "list")
	if code != 0 {
		t.Fatalf("list exit %d: %s", code, out)
	}
	var cat []api.ExperimentInfo
	if err := json.Unmarshal([]byte(out), &cat); err != nil || len(cat) != 8 {
		t.Fatalf("catalog %q: %v", out, err)
	}

	out, code = ctl("experiment", "run", "e8", "-sync", "-trials", "2", "-seed", "5")
	if code != 0 {
		t.Fatalf("sync run exit %d: %s", code, out)
	}
	var tab api.Table
	if err := json.Unmarshal([]byte(out), &tab); err != nil || tab.ID != "e8" || len(tab.Rows) == 0 {
		t.Fatalf("sync table %q: %v", out, err)
	}

	out, code = ctl("experiment", "run", "e8", "-trials", "2", "-no-wait")
	if code != 0 {
		t.Fatalf("async run exit %d: %s", code, out)
	}
	var h api.Handle
	if err := json.Unmarshal([]byte(out), &h); err != nil || !strings.HasPrefix(h.ID, "x-") {
		t.Fatalf("job handle %q: %v", out, err)
	}
	out, code = ctl("experiment", "get", h.ID, "-wait")
	if code != 0 {
		t.Fatalf("job get exit %d: %s", code, out)
	}
	var jv api.ExperimentJobView
	if err := json.Unmarshal([]byte(out), &jv); err != nil || jv.State != api.StateDone || jv.Table == nil {
		t.Fatalf("job view %q: %v", out, err)
	}
}

// TestCtlErrorsAndUsage pins exit codes: 1 for API errors, 2 for usage
// mistakes; ready and apidoc work.
func TestCtlErrorsAndUsage(t *testing.T) {
	_, ctl := ctlFarm(t)

	if out, code := ctl("session", "get", "s-424242"); code != 1 {
		t.Fatalf("unknown session exit %d: %s", code, out)
	}
	if out, code := ctl("session", "frobnicate"); code != 2 {
		t.Fatalf("bad verb exit %d: %s", code, out)
	}
	if out, code := ctl("session", "get"); code != 2 {
		t.Fatalf("missing arg exit %d: %s", code, out)
	}
	if out, code := ctl(); code != 2 {
		t.Fatalf("no command exit %d: %s", code, out)
	}
	if out, code := ctl("ready"); code != 0 || !strings.Contains(out, `"ready": true`) {
		t.Fatalf("ready exit %d: %s", code, out)
	}
	out, code := ctl("apidoc")
	if code != 0 {
		t.Fatalf("apidoc exit %d", code)
	}
	if out != api.Reference() {
		t.Fatal("apidoc does not print api.Reference()")
	}
	for _, want := range []string{"/v1/sessions", "pool_saturated", "next_offset"} {
		if !strings.Contains(out, want) {
			t.Fatalf("apidoc misses %q", want)
		}
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
