// Command cheaptalk runs a single compiled cheap-talk session and prints
// what happened: the theorem variant used, the agreed action profile, the
// message/step counts, and optionally the first part of the scheduler's
// message-pattern timeline.
//
// Usage:
//
//	cheaptalk -n 5 -k 1 -t 0 -variant 4.1 -seed 3 -timeline 30
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncmediator/internal/async"
	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cheaptalk:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cheaptalk", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of players")
	k := fs.Int("k", 1, "rational coalition bound")
	t := fs.Int("t", 0, "malicious player bound")
	variant := fs.String("variant", "4.1", "theorem variant: 4.1, 4.2, 4.4, 4.5")
	seed := fs.Int64("seed", 1, "run seed")
	timeline := fs.Int("timeline", 0, "print the first N scheduler steps")
	sched := fs.String("sched", "roundrobin", "scheduler: roundrobin, random, fifo")
	if err := fs.Parse(args); err != nil {
		return err
	}

	v, err := core.ParseVariant(*variant)
	if err != nil {
		return err
	}
	params, err := core.Section64Params(*n, *k, *t, v)
	if err != nil {
		return err
	}
	params.CoinSeed = *seed
	if err := params.Validate(); err != nil {
		return err
	}
	g := params.Game

	s, err := async.SchedulerByName(*sched, *seed)
	if err != nil {
		return err
	}

	// Trace only when asked (it is O(messages) memory).
	rec := &async.TraceRecorder{}
	types := make([]game.Type, *n)
	procs, err := core.BuildProcs(core.RunConfig{Params: params, Types: types})
	if err != nil {
		return err
	}
	cfg := async.Config{Procs: procs, Scheduler: s, Seed: *seed, MaxSteps: 50_000_000}
	if *timeline > 0 {
		cfg.Trace = rec.Record
	}
	rt, err := async.New(cfg)
	if err != nil {
		return err
	}
	res, err := rt.Run()
	if err != nil {
		return err
	}
	prof := mediator.ResolveMoves(g, types, res, params.Approach)

	fmt.Printf("variant:    %v (bound n > %d, have n=%d)\n", v, v.Bound(*k, *t)-1, *n)
	fmt.Printf("profile:    %v\n", prof)
	fmt.Printf("utility:    %.3g\n", g.Utility(types, prof)[0])
	fmt.Printf("deadlocked: %v\n", res.Deadlocked)
	fmt.Printf("messages:   %d sent, %d delivered, %d steps\n",
		res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.Steps)
	if *timeline > 0 {
		fmt.Printf("\nscheduler timeline (first %d steps):\n%s", *timeline, rec.Timeline(*timeline))
		fmt.Printf("max in-flight messages: %d\n", rec.MaxInFlight())
	}
	return nil
}
