package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: asyncmediator
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkExperimentSweep/workers=1         	       1	2451599519 ns/op
BenchmarkExperimentSweep/workers=4         	       1	1102383032 ns/op
BenchmarkServiceThroughput/default-n=5,t=1-4 	     256	   4143520 ns/op	       241.3 sessions/sec	    195000 msgs/sec	       812.0 msgs/play	  513344 B/op	    7042 allocs/op
PASS
ok  	asyncmediator	8.093s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("bad header: %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	b := s.Benchmarks[0]
	if b.Name != "BenchmarkExperimentSweep/workers=1" || b.Iterations != 1 || b.Pkg != "asyncmediator" {
		t.Fatalf("bad benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 2451599519 {
		t.Fatalf("bad ns/op: %v", b.Metrics)
	}
	svc := s.Benchmarks[2]
	if svc.Metrics["sessions/sec"] != 241.3 || svc.Metrics["allocs/op"] != 7042 {
		t.Fatalf("bad multi-metric parse: %+v", svc.Metrics)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken\nBenchmarkAlso broken here\nBenchmarkOK 2 10 ns/op\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("want only the well-formed line: %+v", s.Benchmarks)
	}
}
