package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: asyncmediator
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkExperimentSweep/workers=1         	       1	2451599519 ns/op
BenchmarkExperimentSweep/workers=4         	       1	1102383032 ns/op
BenchmarkServiceThroughput/default-n=5,t=1-4 	     256	   4143520 ns/op	       241.3 sessions/sec	    195000 msgs/sec	       812.0 msgs/play	  513344 B/op	    7042 allocs/op
PASS
ok  	asyncmediator	8.093s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("bad header: %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	b := s.Benchmarks[0]
	if b.Name != "BenchmarkExperimentSweep/workers=1" || b.Iterations != 1 || b.Pkg != "asyncmediator" {
		t.Fatalf("bad benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 2451599519 {
		t.Fatalf("bad ns/op: %v", b.Metrics)
	}
	svc := s.Benchmarks[2]
	if svc.Metrics["sessions/sec"] != 241.3 || svc.Metrics["allocs/op"] != 7042 {
		t.Fatalf("bad multi-metric parse: %+v", svc.Metrics)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken\nBenchmarkAlso broken here\nBenchmarkOK 2 10 ns/op\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("want only the well-formed line: %+v", s.Benchmarks)
	}
}

// kernelSummary builds a Summary with one field-package kernel benchmark
// at the given ns/op, plus a non-kernel throughput benchmark the gate
// must ignore.
func kernelSummary(nsop, other float64) *Summary {
	return &Summary{Benchmarks: []Benchmark{
		{Pkg: "asyncmediator/internal/field", Name: "BenchmarkMulVec",
			Iterations: 1000, Metrics: map[string]float64{"ns/op": nsop}},
		{Pkg: "asyncmediator/internal/service", Name: "BenchmarkServiceThroughput/default",
			Iterations: 10, Metrics: map[string]float64{"ns/op": other, "sessions/sec": 100}},
	}}
}

// TestKernelGateFailsOnInjectedRegression is the gate's contract: an
// injected 25% ns/op regression on a kernel benchmark must produce a
// non-zero failure count (CI exits 1), while the same slowdown on a
// non-kernel benchmark must not.
func TestKernelGateFailsOnInjectedRegression(t *testing.T) {
	seed := kernelSummary(1000, 1000)
	cur := kernelSummary(1250, 1250) // +25% on both
	var sb strings.Builder
	if got := diffKernels(&sb, seed, cur); got != 1 {
		t.Fatalf("injected 25%% kernel regression: %d failures, want 1\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") || !strings.Contains(sb.String(), "BenchmarkMulVec") {
		t.Fatalf("missing FAIL diagnostics: %q", sb.String())
	}
	if strings.Contains(sb.String(), "ServiceThroughput") {
		t.Fatalf("non-kernel benchmark must not be gated: %q", sb.String())
	}
}

// TestKernelGatePassesWithinThreshold: 20% is the edge; slightly under
// must pass, speedups must pass.
func TestKernelGatePassesWithinThreshold(t *testing.T) {
	seed := kernelSummary(1000, 1000)
	for _, cur := range []*Summary{
		kernelSummary(1190, 1190), // +19%
		kernelSummary(400, 400),   // speedup
		kernelSummary(1000, 1000), // unchanged
	} {
		var sb strings.Builder
		if got := diffKernels(&sb, seed, cur); got != 0 {
			t.Fatalf("unexpected gate failure at %v ns/op: %s",
				cur.Benchmarks[0].Metrics["ns/op"], sb.String())
		}
	}
}

// TestKernelGateSkipsUnknownCases: benchmarks absent from the seed (new
// benches) or from the current run (filtered out) are not gated.
func TestKernelGateSkipsUnknownCases(t *testing.T) {
	seed := kernelSummary(1000, 1000)
	cur := &Summary{Benchmarks: []Benchmark{
		{Pkg: "asyncmediator/internal/field", Name: "BenchmarkBrandNew",
			Iterations: 1, Metrics: map[string]float64{"ns/op": 9e9}},
	}}
	var sb strings.Builder
	if got := diffKernels(&sb, seed, cur); got != 0 {
		t.Fatalf("new benchmark must not be gated: %s", sb.String())
	}
}

func TestDiffThroughputWarnOnly(t *testing.T) {
	seed := &Summary{Benchmarks: []Benchmark{
		{Name: "BenchmarkServiceThroughput/default", Metrics: map[string]float64{"sessions/sec": 100}},
	}}
	cur := &Summary{Benchmarks: []Benchmark{
		{Name: "BenchmarkServiceThroughput/default", Metrics: map[string]float64{"sessions/sec": 50}},
	}}
	var sb strings.Builder
	diffThroughput(&sb, seed, cur)
	if !strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("expected a throughput warning: %q", sb.String())
	}
}
