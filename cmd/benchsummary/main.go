// Command benchsummary converts `go test -bench` text output (stdin) into
// a machine-readable JSON summary (stdout). CI pipes the benchmark run
// through it and uploads the result (BENCH_ci.json) as a workflow
// artifact, so the perf trajectory — experiment-sweep throughput, farm
// sessions/sec, per-theorem msgs/run — is tracked per commit instead of
// eyeballed.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchsummary > BENCH_ci.json
//
// With -diff SEED.json it also compares the farm-throughput benchmarks
// (BenchmarkServiceThroughput, metric sessions/sec) against a committed
// seed summary and warns on stderr when a case regressed more than 20%.
// The diff never fails the run — single-shot CI benchmarks are too noisy
// to gate on — it makes the regression visible in the job log.
//
// With -kernels SEED.json it instead compares the field/poly/rs/shamir
// kernel micro-benchmarks (metric ns/op) against a committed kernel
// baseline and EXITS NON-ZERO when any case slowed down more than 20%.
// Unlike the end-to-end farm benchmarks, the kernels are tight arithmetic
// loops with stable timings, so a hard gate is reliable: a >20% ns/op
// jump on MulVec or batch interpolation is a real regression, not noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkExperimentSweep/workers=4-4".
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. {"ns/op": 2.4e9, "msgs/run": 812}.
	Metrics map[string]float64 `json:"metrics"`
}

// Summary is the whole run.
type Summary struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output.
func Parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // a status line like "BenchmarkFoo	--- FAIL"
			}
			b.Pkg = pkg
			s.Benchmarks = append(s.Benchmarks, b)
		}
	}
	return s, sc.Err()
}

// parseBenchLine parses "Name N value unit [value unit]...".
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// throughputPrefix selects the benchmarks the -diff mode compares, and
// throughputMetric is the unit it compares on.
const (
	throughputPrefix = "BenchmarkServiceThroughput"
	throughputMetric = "sessions/sec"
	regressionFrac   = 0.20
)

// diffThroughput compares cur's farm-throughput results against the
// seed summary and writes one warning line per case that regressed more
// than regressionFrac. Cases missing on either side are skipped — the
// seed predates them or the run filtered them out.
func diffThroughput(w io.Writer, seed, cur *Summary) {
	base := map[string]float64{}
	for _, b := range seed.Benchmarks {
		if strings.HasPrefix(b.Name, throughputPrefix) {
			if v, ok := b.Metrics[throughputMetric]; ok && v > 0 {
				base[b.Name] = v
			}
		}
	}
	for _, b := range cur.Benchmarks {
		want, ok := base[b.Name]
		if !ok {
			continue
		}
		got := b.Metrics[throughputMetric]
		if got < want*(1-regressionFrac) {
			fmt.Fprintf(w, "benchsummary: WARNING: %s regressed: %.1f %s vs seed %.1f (-%.0f%%, threshold %.0f%%)\n",
				b.Name, got, throughputMetric, want, 100*(1-got/want), 100*regressionFrac)
		}
	}
}

// kernelMetric is the unit the -kernels gate compares on, and kernelPkgs
// lists the packages whose benchmarks it gates. Lower is better for
// ns/op, so the gate trips when cur > seed * (1 + regressionFrac).
const kernelMetric = "ns/op"

var kernelPkgs = map[string]bool{
	"asyncmediator/internal/field":  true,
	"asyncmediator/internal/poly":   true,
	"asyncmediator/internal/rs":     true,
	"asyncmediator/internal/shamir": true,
}

// diffKernels compares cur's kernel benchmarks against the seed summary
// and writes one FAIL line per case that slowed down more than
// regressionFrac. It returns the number of failing cases; a non-zero
// count must fail the run. Cases missing on either side are skipped.
func diffKernels(w io.Writer, seed, cur *Summary) int {
	type key struct{ pkg, name string }
	base := map[key]float64{}
	for _, b := range seed.Benchmarks {
		if kernelPkgs[b.Pkg] {
			if v, ok := b.Metrics[kernelMetric]; ok && v > 0 {
				base[key{b.Pkg, b.Name}] = v
			}
		}
	}
	bad := 0
	for _, b := range cur.Benchmarks {
		want, ok := base[key{b.Pkg, b.Name}]
		if !ok {
			continue
		}
		got := b.Metrics[kernelMetric]
		if got > want*(1+regressionFrac) {
			bad++
			fmt.Fprintf(w, "benchsummary: FAIL: %s %s regressed: %.1f %s vs seed %.1f (+%.0f%%, threshold %.0f%%)\n",
				b.Pkg, b.Name, got, kernelMetric, want, 100*(got/want-1), 100*regressionFrac)
		}
	}
	return bad
}

// loadSummary reads a committed summary JSON from disk.
func loadSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &s, nil
}

func main() {
	diff := flag.String("diff", "", "seed summary JSON to compare farm throughput against (warn-only)")
	kernels := flag.String("kernels", "", "seed summary JSON to gate kernel ns/op against (hard-fail)")
	flag.Parse()
	s, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if *diff != "" {
		seed, err := loadSummary(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		diffThroughput(os.Stderr, seed, s)
	}
	failures := 0
	if *kernels != "" {
		seed, err := loadSummary(*kernels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		failures = diffKernels(os.Stderr, seed, s)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchsummary: %d kernel benchmark(s) regressed beyond %.0f%%\n",
			failures, 100*regressionFrac)
		os.Exit(1)
	}
}
