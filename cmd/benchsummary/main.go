// Command benchsummary converts `go test -bench` text output (stdin) into
// a machine-readable JSON summary (stdout). CI pipes the benchmark run
// through it and uploads the result (BENCH_ci.json) as a workflow
// artifact, so the perf trajectory — experiment-sweep throughput, farm
// sessions/sec, per-theorem msgs/run — is tracked per commit instead of
// eyeballed.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchsummary > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkExperimentSweep/workers=4-4".
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. {"ns/op": 2.4e9, "msgs/run": 812}.
	Metrics map[string]float64 `json:"metrics"`
}

// Summary is the whole run.
type Summary struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output.
func Parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // a status line like "BenchmarkFoo	--- FAIL"
			}
			b.Pkg = pkg
			s.Benchmarks = append(s.Benchmarks, b)
		}
	}
	return s, sc.Err()
}

// parseBenchLine parses "Name N value unit [value unit]...".
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

func main() {
	s, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}
