// Command mediatorsim regenerates the paper-reproduction experiment tables
// (E1-E8 in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	mediatorsim -experiment all            # run everything
//	mediatorsim -experiment e6 -trials 400 # just the Section 6.4 table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncmediator/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mediatorsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mediatorsim", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "experiment to run: e1..e8 or all")
	trials := fs.Int("trials", 0, "Monte-Carlo trials per estimate (0 = default)")
	seed := fs.Int64("seed", 1, "base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := sim.DefaultOptions()
	if *trials > 0 {
		o.Trials = *trials
	}
	o.Seed0 = *seed

	type expFn struct {
		name string
		fn   func(sim.Options) (*sim.Table, error)
	}
	all := []expFn{
		{"e1", sim.E1}, {"e2", sim.E2}, {"e3", sim.E3}, {"e4", sim.E4},
		{"e5", sim.E5}, {"e6", sim.E6}, {"e7", sim.E7}, {"e8", sim.E8},
	}
	want := strings.ToLower(*exp)
	ran := false
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		tab, err := e.fn(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(tab.Render())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want e1..e8 or all)", *exp)
	}
	return nil
}
