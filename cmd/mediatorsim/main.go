// Command mediatorsim regenerates the paper-reproduction experiment tables
// (E1-E8 in DESIGN.md / EXPERIMENTS.md), sharding each experiment's
// (params x trial) grid across a worker pool. Output is bit-identical at
// any parallelism level: -parallel only changes how fast the sweep runs.
//
// Usage:
//
//	mediatorsim -experiment all                  # run everything, all cores
//	mediatorsim -experiment e6 -trials 400       # just the Section 6.4 table
//	mediatorsim -parallel 1                      # serial reference run
//	mediatorsim -json out.json                   # machine-readable sweep report
//	mediatorsim -experiment e1,e5 -json -        # JSON only, to stdout
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asyncmediator/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mediatorsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mediatorsim", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "comma-separated experiment ids (see list below) or all")
	trials := fs.Int("trials", 0, "Monte-Carlo trials per estimate (0 = default 100)")
	seed := fs.Int64("seed", 1, "base seed; trial i of a sweep plays with seed+i")
	parallel := fs.Int("parallel", 0, "worker count for trial sharding (0 = all cores, 1 = serial)")
	jsonOut := fs.String("json", "", "also write the sweep report as JSON to this file (\"-\": JSON to stdout, no text tables)")
	fs.Usage = func() {
		out := fs.Output()
		fmt.Fprintf(out, "Usage of mediatorsim:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, "\nExperiments (ids accepted by -experiment):\n")
		for _, e := range sim.Catalog() {
			fmt.Fprintf(out, "  %-4s %s\n", e.ID, e.Title)
		}
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	o := sim.DefaultOptions()
	if *trials > 0 {
		o.Trials = *trials
	}
	o.Seed0 = *seed

	var ids []string
	for _, id := range strings.Split(strings.ToLower(*exp), ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}

	eng := sim.NewEngine(*parallel)
	defer eng.Close()
	rep, err := eng.Sweep(ids, o)
	if err != nil {
		return err
	}

	// The report file lands before the text render, so a consumer piping
	// the tables through a pager cannot truncate the artifact.
	if *jsonOut != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			_, err = stdout.Write(b)
			return err
		}
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			return err
		}
	}
	for _, tab := range rep.Tables {
		fmt.Fprintln(stdout, tab.Render())
	}
	return nil
}
