package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"asyncmediator/internal/sim"
)

func TestRunJSONToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "e8", "-trials", "1", "-parallel", "2", "-json", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep sim.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, buf.String())
	}
	if len(rep.Tables) != 1 || rep.Tables[0].ID != "e8" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if strings.Contains(buf.String(), "== E8") {
		t.Fatal("-json - must suppress the text tables")
	}
}

func TestRunTextTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "e8", "-trials", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== E8: substrate ablation") {
		t.Fatalf("missing rendered table:\n%s", buf.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "e99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}
