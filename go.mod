module asyncmediator

go 1.22
