package client

import (
	"context"
	"net/http"

	"asyncmediator/api"
)

// The cluster calls use deterministic Idempotency-Keys derived from the
// cluster id rather than per-call minted ones: a cluster id names exactly
// one play, so any retry of its join/start/finish — even from a freshly
// restarted coordinator holding a brand-new client — replays the daemon's
// cached response instead of re-executing.

// ClusterJoin invites the daemon to co-host a play: it binds one
// transport listener per named player and answers with their addresses.
// The call is idempotency-keyed, so the built-in retry is safe over
// transport failures.
func (c *Client) ClusterJoin(ctx context.Context, req api.ClusterJoinRequest) (api.ClusterJoinResponse, error) {
	var resp api.ClusterJoinResponse
	err := c.doKeyed(ctx, http.MethodPost, "/v1/cluster/join", nil, "cluster-join-"+req.ClusterID, req, &resp)
	return resp, err
}

// ClusterStart hands the daemon the complete player->address table. A
// synchronous start blocks while the daemon's local players run and
// returns their terminal outcomes; with req.Async set, the daemon
// answers Accepted immediately and the outcomes arrive as a terminal
// session-kind event under the cluster id (StreamEvents). Also
// idempotency-keyed: a retried start replays the first completed
// response rather than re-running the play.
func (c *Client) ClusterStart(ctx context.Context, req api.ClusterStartRequest) (api.ClusterStartResponse, error) {
	var resp api.ClusterStartResponse
	err := c.doKeyed(ctx, http.MethodPost, "/v1/cluster/start", nil, "cluster-start-"+req.ClusterID, req, &resp)
	return resp, err
}

// ClusterFinish releases a lingering play's transports once every
// daemon's outcomes are gathered. Releasing an already-gone play is a
// successful no-op (Released false), so this retries safely.
func (c *Client) ClusterFinish(ctx context.Context, req api.ClusterFinishRequest) (api.ClusterFinishResponse, error) {
	var resp api.ClusterFinishResponse
	err := c.doKeyed(ctx, http.MethodPost, "/v1/cluster/finish", nil, "cluster-finish-"+req.ClusterID, req, &resp)
	return resp, err
}

// ClusterPlan dry-runs the daemon's placement scheduler: the assignment
// a session created with this spec would get against the current fleet
// view, without creating anything. Infeasible specs yield
// ErrPlacementInfeasible; a fleet too unhealthy for the requested
// placement yields ErrFleetUnderFloor.
func (c *Client) ClusterPlan(ctx context.Context, req api.ClusterPlanRequest) (api.ClusterPlanResponse, error) {
	var resp api.ClusterPlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/plan", nil, req, &resp)
	return resp, err
}

// FleetStatus fetches the daemon's gossip-derived view of the whole
// fleet: per-peer health summaries, liveness judgements, and currently
// firing alerts. Daemons started without -fleet-listen answer not_found.
func (c *Client) FleetStatus(ctx context.Context) (api.FleetView, error) {
	var v api.FleetView
	err := c.do(ctx, http.MethodGet, "/v1/cluster/fleet", nil, nil, &v)
	return v, err
}

// ClusterDrop fires the daemon's fault-injection hook (mediatord
// -chaos): every live cluster transport connection is severed, and the
// reconnect/resend machinery must heal the play. It returns how many
// connections were dropped.
func (c *Client) ClusterDrop(ctx context.Context) (int, error) {
	var out struct {
		Dropped int `json:"dropped"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/cluster/drop", nil, nil, &out)
	return out.Dropped, err
}
