package client

import (
	"context"
	"net/http"

	"asyncmediator/api"
)

// ClusterJoin invites the daemon to co-host a play: it binds one
// transport listener per named player and answers with their addresses.
// The call is idempotency-keyed, so the built-in retry is safe over
// transport failures.
func (c *Client) ClusterJoin(ctx context.Context, req api.ClusterJoinRequest) (api.ClusterJoinResponse, error) {
	var resp api.ClusterJoinResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/join", nil, req, &resp)
	return resp, err
}

// ClusterStart hands the daemon the complete player->address table; it
// blocks while the daemon's local players run and returns their terminal
// outcomes. Also idempotency-keyed: a retried start replays the first
// completed response rather than re-running the play.
func (c *Client) ClusterStart(ctx context.Context, req api.ClusterStartRequest) (api.ClusterStartResponse, error) {
	var resp api.ClusterStartResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/start", nil, req, &resp)
	return resp, err
}

// ClusterFinish releases a lingering play's transports once every
// daemon's outcomes are gathered. Releasing an already-gone play is a
// successful no-op (Released false), so this retries safely.
func (c *Client) ClusterFinish(ctx context.Context, req api.ClusterFinishRequest) (api.ClusterFinishResponse, error) {
	var resp api.ClusterFinishResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/finish", nil, req, &resp)
	return resp, err
}

// FleetStatus fetches the daemon's gossip-derived view of the whole
// fleet: per-peer health summaries, liveness judgements, and currently
// firing alerts. Daemons started without -fleet-listen answer not_found.
func (c *Client) FleetStatus(ctx context.Context) (api.FleetView, error) {
	var v api.FleetView
	err := c.do(ctx, http.MethodGet, "/v1/cluster/fleet", nil, nil, &v)
	return v, err
}

// ClusterDrop fires the daemon's fault-injection hook (mediatord
// -chaos): every live cluster transport connection is severed, and the
// reconnect/resend machinery must heal the play. It returns how many
// connections were dropped.
func (c *Client) ClusterDrop(ctx context.Context) (int, error) {
	var out struct {
		Dropped int `json:"dropped"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/cluster/drop", nil, nil, &out)
	return out.Dropped, err
}
