package client_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"asyncmediator/api"
	"asyncmediator/internal/service"
	"asyncmediator/pkg/client"
)

// farmClient boots a real farm behind httptest and a Client on it.
func farmClient(t *testing.T, cfg service.Config) (*service.Service, *client.Client) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return svc, c
}

// TestClientSessionRoundTrip is the SDK acceptance test: create ->
// submit types -> wait to terminal, all through typed calls, then the
// one-call convenience and stats.
func TestClientSessionRoundTrip(t *testing.T) {
	_, c := farmClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	h, err := c.CreateSession(ctx, api.SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if h.State != api.StateAwaitingTypes || h.ID == "" || h.Seed == 0 {
		t.Fatalf("create handle %+v", h)
	}
	if _, err := c.SubmitTypes(ctx, h.ID, make([]int, 5)); err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitSession(ctx, h.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != api.StateDone || len(v.Profile) != 5 || v.Deadlock {
		t.Fatalf("terminal view %+v", v)
	}

	// The one-call convenience plays a different configuration.
	v2, err := c.PlaySession(ctx, api.SessionSpec{N: 4, K: 1, Variant: "4.2"}, make([]int, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != api.StateDone || len(v2.Profile) != 4 {
		t.Fatalf("played view %+v", v2)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 2 || st.SessionsCreated != 2 {
		t.Fatalf("stats %+v", st.StatsTotals)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClientSentinelErrors asserts every contract code surfaces as the
// matching errors.Is sentinel.
func TestClientSentinelErrors(t *testing.T) {
	_, c := farmClient(t, service.Config{Workers: 1})
	ctx := context.Background()

	if _, err := c.GetSession(ctx, "s-424242"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
	if _, err := c.CreateSession(ctx, api.SessionSpec{Game: "poker"}); !errors.Is(err, client.ErrInvalidArgument) {
		t.Fatalf("bad spec: %v", err)
	}
	h, err := c.CreateSession(ctx, api.SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitTypes(ctx, h.ID, []int{0}); !errors.Is(err, client.ErrInvalidArgument) {
		t.Fatalf("short types: %v", err)
	}
	if _, err := c.SubmitTypes(ctx, h.ID, make([]int, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitTypes(ctx, h.ID, make([]int, 5)); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("double submit: %v", err)
	}
	if _, err := c.GetJob(ctx, "x-424242"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
	// The structured error carries the server's code and message.
	var ae *client.Error
	_, err = c.GetSession(ctx, "s-424242")
	if !errors.As(err, &ae) || ae.Err.Code != api.CodeNotFound || ae.Status != http.StatusNotFound {
		t.Fatalf("structured error: %v", err)
	}
}

// TestClientRetryBackoff asserts retryable failures (pool saturation)
// are retried with backoff and non-retryable ones are not.
func TestClientRetryBackoff(t *testing.T) {
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) < 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":{"code":"pool_saturated","message":"queue full"}}`))
			return
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"id":"s-000001","state":"awaiting-types","seed":7}`))
	})
	var conflicts atomic.Int64
	mux.HandleFunc("POST /v1/sessions/{id}/types", func(w http.ResponseWriter, r *http.Request) {
		conflicts.Add(1)
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":{"code":"conflict","message":"nope"}}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c, err := client.New(ts.URL, client.WithRetries(3), client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.CreateSession(context.Background(), api.SessionSpec{})
	if err != nil {
		t.Fatalf("create after retries: %v", err)
	}
	if h.ID != "s-000001" || posts.Load() != 3 {
		t.Fatalf("handle %+v after %d posts", h, posts.Load())
	}
	// A conflict is never retried.
	if _, err := c.SubmitTypes(context.Background(), h.ID, []int{0}); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("conflict: %v", err)
	}
	if conflicts.Load() != 1 {
		t.Fatalf("conflict retried %d times", conflicts.Load())
	}
	// Retries respect the context.
	posts.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CreateSession(ctx, api.SessionSpec{}); err == nil {
		t.Fatal("cancelled create succeeded")
	}
}

// TestClientErrorFallback: a non-envelope error body (legacy server,
// proxy) still maps onto a sentinel by HTTP status.
func TestClientErrorFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text not found", http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSession(context.Background(), "s-1"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("fallback mapping: %v", err)
	}
}

// TestClientPaginationWalk drives EachSession across next_offset
// cursors.
func TestClientPaginationWalk(t *testing.T) {
	_, c := farmClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 7; i++ {
		if _, err := c.PlaySession(ctx, api.SessionSpec{N: 4, K: 1, Variant: "4.2"}, make([]int, 4)); err != nil {
			t.Fatal(err)
		}
	}
	var walked []string
	err := c.EachSession(ctx, client.ListSessionsOptions{State: "done", Limit: 3}, func(v api.SessionView) error {
		walked = append(walked, v.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(walked) != 7 {
		t.Fatalf("walked %d sessions: %v", len(walked), walked)
	}
	for i := 1; i < len(walked); i++ {
		if walked[i] <= walked[i-1] {
			t.Fatalf("walk out of order: %v", walked)
		}
	}
}

// TestClientEventStream subscribes before the play and receives its
// lifecycle through the SSE helper, terminal snapshot included.
func TestClientEventStream(t *testing.T) {
	_, c := farmClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	h, err := c.CreateSession(ctx, api.SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := c.StreamEvents(ctx, client.StreamOptions{Session: h.ID})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if stream.Hello().Seq <= 0 {
		t.Fatalf("hello seq %d", stream.Hello().Seq)
	}
	if _, err := c.SubmitTypes(ctx, h.ID, make([]int, 5)); err != nil {
		t.Fatal(err)
	}
	var lastSeq int64
	for {
		e, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != h.ID || e.Kind != api.KindSession {
			t.Fatalf("filter leaked %+v", e)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("seq not monotone: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Terminal {
			v, ok := e.Session()
			if !ok || v.ID != h.ID || v.State != api.StateDone || len(v.Profile) != 5 {
				t.Fatalf("terminal payload %+v ok=%v", v, ok)
			}
			return
		}
	}
}

// TestClientExperiments covers the catalog, the synchronous run, and the
// async job path.
func TestClientExperiments(t *testing.T) {
	_, c := farmClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cat, err := c.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 8 || cat[0].ID != "e1" {
		t.Fatalf("catalog %+v", cat)
	}
	seed := int64(5)
	tab, err := c.RunExperiment(ctx, "e8", client.RunOptions{Trials: 2, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e8" || len(tab.Rows) == 0 {
		t.Fatalf("table %+v", tab)
	}
	if _, err := c.RunExperiment(ctx, "e99", client.RunOptions{}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown experiment: %v", err)
	}

	jv, err := c.RunJob(ctx, api.ExperimentRequest{Experiment: "e8", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if jv.State != api.StateDone || jv.Table == nil || jv.Table.ID != "e8" {
		t.Fatalf("job view %+v", jv)
	}
	if _, err := c.CreateJob(ctx, api.ExperimentRequest{Experiment: "e99"}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown job experiment: %v", err)
	}
}

// TestClientStreamEOFOnShutdown: closing the farm ends the stream with
// io.EOF, not a hang.
func TestClientStreamEOFOnShutdown(t *testing.T) {
	svc, c := farmClient(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stream, err := c.StreamEvents(ctx, client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	go svc.Events().Close()
	for {
		if _, err := stream.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("stream ended with %v, want EOF", err)
			}
			return
		}
	}
}

// TestClientIdempotentPOSTRetry: a POST whose first attempt dies at the
// transport layer (connection severed before any response) is retried —
// safe because every SDK POST carries an Idempotency-Key — and the same
// key arrives on every attempt, so the server executes at most once.
func TestClientIdempotentPOSTRetry(t *testing.T) {
	var keys []string
	var attempts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(api.IdempotencyKeyHeader))
		if attempts.Add(1) == 1 {
			// Sever the connection mid-request: the client sees a
			// transport error, not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"id":"s-000042","state":"awaiting-types","seed":9}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c, err := client.New(ts.URL, client.WithRetries(2), client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.CreateSession(context.Background(), api.SessionSpec{})
	if err != nil {
		t.Fatalf("create after transport failure: %v", err)
	}
	if h.ID != "s-000042" || attempts.Load() != 2 {
		t.Fatalf("handle %+v after %d attempts", h, attempts.Load())
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across attempts: %q", keys)
	}
}

// TestClientClusterCalls drives the daemon-to-daemon surface through
// the SDK against two real farms: join answers addresses, start runs
// the co-hosted players, and an unknown cluster id maps to ErrNotFound.
func TestClientClusterCalls(t *testing.T) {
	_, peerC := farmClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := peerC.ClusterStart(ctx, api.ClusterStartRequest{ClusterID: "c-nope", Addrs: make([]string, 4)}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("start of unknown cluster: %v", err)
	}
	join := api.ClusterJoinRequest{
		ClusterID: "c-sdk",
		Spec:      api.SessionSpec{Game: "consensus", N: 4, K: 1, Variant: "4.2"},
		Types:     []int{0, 0, 0, 0},
		Players:   []int{0, 1, 2, 3}, // the peer hosts the whole play
		Seed:      3,
	}
	resp, err := peerC.ClusterJoin(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range resp.Addrs {
		if a == "" {
			t.Fatalf("player %d unbound: %v", i, resp.Addrs)
		}
	}
	// A repeated join replays through the deterministic cluster-id key:
	// same addresses, no conflict — the keyed-retry contract.
	again, err := peerC.ClusterJoin(ctx, join)
	if err != nil {
		t.Fatalf("double join: %v", err)
	}
	if len(again.Addrs) != len(resp.Addrs) || again.Addrs[0] != resp.Addrs[0] {
		t.Fatalf("replayed join addrs %v != %v", again.Addrs, resp.Addrs)
	}
	start, err := peerC.ClusterStart(ctx, api.ClusterStartRequest{ClusterID: "c-sdk", Addrs: resp.Addrs})
	if err != nil {
		t.Fatal(err)
	}
	if len(start.Results) != 4 {
		t.Fatalf("results %+v", start.Results)
	}
	for _, r := range start.Results {
		if r.Error != "" || r.TimedOut || len(r.Move) == 0 {
			t.Fatalf("player %d result %+v", r.Index, r)
		}
	}
	// The play lingers (resend buffers stay live) until finish releases
	// it; a second finish is a successful no-op.
	fin, err := peerC.ClusterFinish(ctx, api.ClusterFinishRequest{ClusterID: "c-sdk"})
	if err != nil || !fin.Released {
		t.Fatalf("finish: %+v %v", fin, err)
	}
	// A repeated finish replays the cached response under the same
	// deterministic key (Released stays true) instead of re-executing.
	fin, err = peerC.ClusterFinish(ctx, api.ClusterFinishRequest{ClusterID: "c-sdk"})
	if err != nil || !fin.Released {
		t.Fatalf("double finish: %+v %v", fin, err)
	}
}
