// Package client is the typed Go SDK for the mediatord session farm's
// /v1 API (package api): session lifecycle, experiment sweeps, stats,
// and the event stream, with context-aware retry/backoff, long-poll
// helpers, and SSE subscriptions. Every request and response body is an
// api type; every failure maps the server's stable error code back to a
// sentinel error this package exports, so callers switch with errors.Is
// rather than string-matching messages — the client-side half of the
// wire contract.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"asyncmediator/api"
)

// The sentinel errors api error codes map onto. Use errors.Is; the full
// server message travels in the wrapping *Error.
var (
	// ErrNotFound: no session, job, or experiment with that id or name.
	ErrNotFound = errors.New("client: not found")
	// ErrInvalidArgument: the server rejected the request as malformed.
	ErrInvalidArgument = errors.New("client: invalid argument")
	// ErrConflict: the request is illegal in the subject's lifecycle state.
	ErrConflict = errors.New("client: lifecycle conflict")
	// ErrPoolSaturated: farm backpressure; the request had no effect.
	ErrPoolSaturated = errors.New("client: pool saturated")
	// ErrNotReady: the daemon is booting or draining.
	ErrNotReady = errors.New("client: daemon not ready")
	// ErrPlacementInfeasible: the spec violates the paper's n > 4k+3t
	// placement floor (or is otherwise unplaceable on any fleet).
	ErrPlacementInfeasible = errors.New("client: placement infeasible")
	// ErrFleetUnderFloor: the fleet is currently too small or unhealthy
	// for the requested placement; retry after it recovers.
	ErrFleetUnderFloor = errors.New("client: fleet under placement floor")
	// ErrInternal: the server faulted (or answered with an unknown code).
	ErrInternal = errors.New("client: internal server error")
)

// sentinel maps a contract code to its package-level error.
func sentinel(code api.ErrorCode) error {
	switch code {
	case api.CodeNotFound:
		return ErrNotFound
	case api.CodeInvalidArgument:
		return ErrInvalidArgument
	case api.CodeConflict:
		return ErrConflict
	case api.CodePoolSaturated:
		return ErrPoolSaturated
	case api.CodeNotReady:
		return ErrNotReady
	case api.CodePlacementInfeasible:
		return ErrPlacementInfeasible
	case api.CodeFleetUnderFloor:
		return ErrFleetUnderFloor
	default:
		return ErrInternal
	}
}

// Error is a failed API call: the server's structured error plus the
// HTTP status it arrived with. It unwraps to the sentinel its code maps
// to, so errors.Is(err, client.ErrNotFound) works on any wrapped form.
type Error struct {
	Status int
	Err    api.Error
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("client: %s (%s, http %d)", e.Err.Message, e.Err.Code, e.Status)
}

// Unwrap maps the stable code onto this package's sentinels.
func (e *Error) Unwrap() error { return sentinel(e.Err.Code) }

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (connection pooling,
// TLS, proxies). The default has no global timeout: per-call deadlines
// belong to the caller's context (SSE streams and long-polls are
// long-lived by design).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable failure is retried
// (default 3; 0 disables).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and cap of the exponential retry backoff
// (defaults 100ms and 2s). The wait doubles per attempt and respects the
// call's context.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// WithRequestIDPrefix sets the prefix of generated request ids (default
// "ctl"); ids are injected on every call and echoed by the daemon, so
// one id ties client call, server log line, and response together.
func WithRequestIDPrefix(p string) Option { return func(c *Client) { c.idPrefix = p } }

// Client is a typed handle on one mediatord daemon.
type Client struct {
	base        *url.URL
	hc          *http.Client
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	idPrefix    string
	nonce       string
	reqSeq      atomic.Int64
	idemSeq     atomic.Int64
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The /v1 prefix is appended per call — pass
// the bare host URL.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(strings.TrimSuffix(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	var nonce [6]byte
	_, _ = rand.Read(nonce[:])
	c := &Client{
		base:        u,
		hc:          &http.Client{},
		retries:     3,
		backoffBase: 100 * time.Millisecond,
		backoffMax:  2 * time.Second,
		idPrefix:    "ctl",
		nonce:       hex.EncodeToString(nonce[:]),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the daemon address this client talks to.
func (c *Client) BaseURL() string { return c.base.String() }

// endpoint joins the base URL, the /v1 prefix (unless the path is
// unversioned infrastructure), and the query.
func (c *Client) endpoint(path string, query url.Values) string {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if query != nil {
		u.RawQuery = query.Encode()
	}
	return u.String()
}

// retryable reports whether err is worth retrying: the server's
// transient codes always are; transport-level failures for GETs and for
// POSTs that carried an Idempotency-Key (the server caches the first
// completed response under the key, so a retried create either executes
// once or replays — never doubles).
func retryable(method string, idemKey string, err error) bool {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Err.Code.Retryable()
	}
	return method == http.MethodGet || idemKey != ""
}

// do performs one JSON round trip with retry/backoff: body (when
// non-nil) is marshaled per attempt, out (when non-nil) receives the
// decoded 2xx response. Every POST is stamped with a fresh
// Idempotency-Key that stays fixed across its retries.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any) error {
	idemKey := ""
	if method == http.MethodPost {
		idemKey = c.nextIdempotencyKey()
	}
	return c.doKeyed(ctx, method, path, query, idemKey, body, out)
}

// doKeyed is do with a caller-chosen Idempotency-Key (empty: unkeyed).
// Deterministic keys — derived from the resource rather than minted —
// make a retry replay server-side even across a new client instance: the
// cluster calls derive theirs from the cluster id for exactly that.
func (c *Client) doKeyed(ctx context.Context, method, path string, query url.Values, idemKey string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, method, path, query, payload, idemKey, out)
		if lastErr == nil || attempt >= c.retries || !retryable(method, idemKey, lastErr) {
			return lastErr
		}
		if err := c.sleep(ctx, attempt); err != nil {
			return lastErr
		}
	}
}

// sleep waits out the exponential backoff of `attempt`, honouring ctx.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.backoffBase << attempt
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// once is a single request/response exchange.
func (c *Client) once(ctx context.Context, method, path string, query url.Values, payload []byte, idemKey string, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.endpoint(path, query), rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(api.IdempotencyKeyHeader, idemKey)
	}
	req.Header.Set(api.RequestIDHeader, c.nextRequestID())
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// nextRequestID mints a client-side request id.
func (c *Client) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", c.idPrefix, c.reqSeq.Add(1))
}

// nextIdempotencyKey mints a key unique across client instances (the
// per-client random nonce) and calls (the sequence).
func (c *Client) nextIdempotencyKey() string {
	return fmt.Sprintf("%s-%s-%06d", c.idPrefix, c.nonce, c.idemSeq.Add(1))
}

// decodeError turns a non-2xx response into *Error. A body that is not
// the contract's envelope (a misbehaving proxy, a pre-/v1 server)
// degrades to a code inferred from the HTTP status, so errors.Is keeps
// working.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		return &Error{Status: resp.StatusCode, Err: *env.Error}
	}
	code := api.CodeInternal
	switch resp.StatusCode {
	case http.StatusBadRequest:
		code = api.CodeInvalidArgument
	case http.StatusNotFound:
		code = api.CodeNotFound
	case http.StatusConflict:
		code = api.CodeConflict
	case http.StatusServiceUnavailable:
		code = api.CodePoolSaturated
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return &Error{Status: resp.StatusCode, Err: api.Error{Code: code, Message: msg}}
}

// Healthy probes GET /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	var h api.Health
	return c.doUnversioned(ctx, "/healthz", &h)
}

// Ready probes GET /readyz; a not-ready daemon yields ErrNotReady with
// the server's reason.
func (c *Client) Ready(ctx context.Context) error {
	var rd api.Readiness
	return c.doUnversioned(ctx, "/readyz", &rd)
}

// doUnversioned GETs an infrastructure path (no /v1 prefix, no retry —
// probes should report the instant truth). A 503 readiness body is
// surfaced as ErrNotReady.
func (c *Client) doUnversioned(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint(path, nil), nil)
	if err != nil {
		return err
	}
	req.Header.Set(api.RequestIDHeader, c.nextRequestID())
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		var rd api.Readiness
		if json.NewDecoder(resp.Body).Decode(&rd) == nil && rd.Reason != "" {
			return &Error{Status: resp.StatusCode, Err: api.Error{Code: api.CodeNotReady, Message: rd.Reason}}
		}
		return &Error{Status: resp.StatusCode, Err: api.Error{Code: api.CodeNotReady, Message: "not ready"}}
	}
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
