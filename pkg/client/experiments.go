package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"asyncmediator/api"
)

// Catalog lists the paper's runnable experiments (e1..e8).
func (c *Client) Catalog(ctx context.Context) ([]api.ExperimentInfo, error) {
	var resp api.CatalogResponse
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, nil, &resp)
	return resp.Experiments, err
}

// RunOptions tune a synchronous catalog run (zero values take the
// server's quick defaults).
type RunOptions struct {
	Trials   int
	Seed     *int64
	MaxSteps int
}

// RunExperiment runs a catalog experiment synchronously in the request
// (GET /v1/experiments/{name}) and returns its table. For large sweeps
// prefer CreateJob: the synchronous path holds the connection for the
// whole sweep.
func (c *Client) RunExperiment(ctx context.Context, name string, o RunOptions) (*api.Table, error) {
	q := url.Values{}
	if o.Trials > 0 {
		q.Set("trials", strconv.Itoa(o.Trials))
	}
	if o.Seed != nil {
		q.Set("seed", strconv.FormatInt(*o.Seed, 10))
	}
	if o.MaxSteps > 0 {
		q.Set("maxsteps", strconv.Itoa(o.MaxSteps))
	}
	var tab api.Table
	if err := c.do(ctx, http.MethodGet, "/v1/experiments/"+url.PathEscape(name), q, nil, &tab); err != nil {
		return nil, err
	}
	return &tab, nil
}

// CreateJob starts a persisted asynchronous experiment sweep on the
// farm's shared worker pool (POST /v1/jobs).
func (c *Client) CreateJob(ctx context.Context, req api.ExperimentRequest) (api.Handle, error) {
	var h api.Handle
	err := c.do(ctx, http.MethodPost, "/v1/jobs", nil, req, &h)
	return h, err
}

// GetJob fetches one experiment-job snapshot.
func (c *Client) GetJob(ctx context.Context, id string) (api.ExperimentJobView, error) {
	var v api.ExperimentJobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &v)
	return v, err
}

// WaitJob long-polls until the job reaches a terminal state or ctx
// expires.
func (c *Client) WaitJob(ctx context.Context, id string) (api.ExperimentJobView, error) {
	q := url.Values{"wait": {waitChunk.String()}}
	for {
		var v api.ExperimentJobView
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), q, nil, &v); err != nil {
			return api.ExperimentJobView{}, err
		}
		if v.State.Terminal() {
			return v, nil
		}
		if err := pausePoll(ctx); err != nil {
			return v, fmt.Errorf("client: waiting for job %s (state %s): %w", id, v.State, err)
		}
	}
}

// RunJob is the asynchronous end-to-end convenience: create the job and
// wait for its terminal snapshot.
func (c *Client) RunJob(ctx context.Context, req api.ExperimentRequest) (api.ExperimentJobView, error) {
	h, err := c.CreateJob(ctx, req)
	if err != nil {
		return api.ExperimentJobView{}, err
	}
	return c.WaitJob(ctx, h.ID)
}
