package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"asyncmediator/api"
)

// waitChunk is the ?wait= the long-poll helpers ask for per request —
// the contract's cap, so each hold is one round trip.
const waitChunk = api.MaxWaitSeconds * time.Second

// pollPause spaces long-poll rounds that return non-terminal snapshots
// early (a draining daemon releases holds instantly; a proxy may strip
// ?wait=). Without it the wait loops degrade into tight HTTP spins.
const pollPause = 250 * time.Millisecond

// pausePoll sleeps one pollPause respecting ctx.
func pausePoll(ctx context.Context) error {
	t := time.NewTimer(pollPause)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CreateSession registers a new play in the awaiting-types state. The
// zero Spec selects the farm's default serving configuration.
func (c *Client) CreateSession(ctx context.Context, spec api.SessionSpec) (api.Handle, error) {
	var h api.Handle
	err := c.do(ctx, http.MethodPost, "/v1/sessions", nil, spec, &h)
	return h, err
}

// SubmitTypes supplies the session's realized type profile and queues
// the play. On ErrPoolSaturated the submission rolled back server-side;
// the built-in backoff retries it, and a caller that still sees the
// error may retry again later.
func (c *Client) SubmitTypes(ctx context.Context, id string, types []int) (api.Handle, error) {
	var h api.Handle
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/types", nil, api.TypesRequest{Types: types}, &h)
	return h, err
}

// GetSession fetches one session snapshot.
func (c *Client) GetSession(ctx context.Context, id string) (api.SessionView, error) {
	var v api.SessionView
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, nil, &v)
	return v, err
}

// GetSessionTrace fetches a terminal session's stitched play trace: one
// trace id, per-phase spans from every daemon that co-hosted the play.
// Pre-terminal sessions (and farms running with tracing disabled) answer
// ErrNotFound.
func (c *Client) GetSessionTrace(ctx context.Context, id string) (api.TraceView, error) {
	var v api.TraceView
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/trace", nil, nil, &v)
	return v, err
}

// WaitSession long-polls until the session reaches a terminal state or
// ctx expires: each round trip holds for the server's maximum wait, so a
// play that finishes in milliseconds answers in milliseconds.
func (c *Client) WaitSession(ctx context.Context, id string) (api.SessionView, error) {
	q := url.Values{"wait": {waitChunk.String()}}
	for {
		var v api.SessionView
		if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), q, nil, &v); err != nil {
			return api.SessionView{}, err
		}
		if v.State.Terminal() {
			return v, nil
		}
		if err := pausePoll(ctx); err != nil {
			return v, fmt.Errorf("client: waiting for session %s (state %s): %w", id, v.State, err)
		}
	}
}

// ListSessionsOptions filter and window GET /v1/sessions.
type ListSessionsOptions struct {
	// State filters to one lifecycle state ("" for all).
	State string
	// Offset is the page cursor (use the previous page's NextOffset).
	Offset int
	// Limit bounds the page size (0: server default).
	Limit int
}

// ListSessions fetches one page of the id-sorted session collection.
func (c *Client) ListSessions(ctx context.Context, o ListSessionsOptions) (api.SessionPage, error) {
	q := url.Values{}
	if o.State != "" {
		q.Set("state", o.State)
	}
	if o.Offset > 0 {
		q.Set("offset", strconv.Itoa(o.Offset))
	}
	if o.Limit > 0 {
		q.Set("limit", strconv.Itoa(o.Limit))
	}
	var page api.SessionPage
	err := c.do(ctx, http.MethodGet, "/v1/sessions", q, nil, &page)
	return page, err
}

// EachSession walks the whole (optionally state-filtered) collection in
// id order, following next_offset cursors, and calls fn per session; a
// non-nil return stops the walk and is returned.
func (c *Client) EachSession(ctx context.Context, o ListSessionsOptions, fn func(api.SessionView) error) error {
	for {
		page, err := c.ListSessions(ctx, o)
		if err != nil {
			return err
		}
		for _, v := range page.Sessions {
			if err := fn(v); err != nil {
				return err
			}
		}
		if page.NextOffset == nil {
			return nil
		}
		o.Offset = *page.NextOffset
	}
}

// PlaySession is the end-to-end convenience: create the session, submit
// the type profile, and wait for the terminal snapshot — one hosted play
// as one call.
func (c *Client) PlaySession(ctx context.Context, spec api.SessionSpec, types []int) (api.SessionView, error) {
	h, err := c.CreateSession(ctx, spec)
	if err != nil {
		return api.SessionView{}, err
	}
	if _, err := c.SubmitTypes(ctx, h.ID, types); err != nil {
		return api.SessionView{}, err
	}
	return c.WaitSession(ctx, h.ID)
}

// Stats fetches the farm-wide aggregate statistics.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var s api.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, &s)
	return s, err
}
