package client

import (
	"context"
	"net/http"
	"net/url"
	"strconv"

	"asyncmediator/api"
)

// TracesOptions filter GET /v1/traces — the retained-trace search.
type TracesOptions struct {
	// Variant matches the play's theorem variant exactly ("" for all).
	Variant string
	// Phase keeps only traces that spent time in the named phase
	// ("rbc", "ba", "avss.share", ...).
	Phase string
	// MinMS keeps traces at or above this duration: the named phase's
	// duration when Phase is set, end-to-end otherwise.
	MinMS float64
	// Since keeps traces finished at or after this unix-millisecond
	// instant.
	Since int64
	// Cursor resumes pagination (the previous page's NextCursor).
	Cursor int64
	// Limit caps the page (0: server default).
	Limit int
	// Fleet asks the daemon to fan the query out to every healthy
	// gossiped peer and merge the results, peer-attributed. Fleet pages
	// do not paginate.
	Fleet bool
}

// Traces searches the daemon's retained-trace ring. Daemons running
// with retention disabled answer ErrNotFound.
func (c *Client) Traces(ctx context.Context, o TracesOptions) (api.TracePage, error) {
	q := url.Values{}
	if o.Variant != "" {
		q.Set("variant", o.Variant)
	}
	if o.Phase != "" {
		q.Set("phase", o.Phase)
	}
	if o.MinMS > 0 {
		q.Set("min_ms", strconv.FormatFloat(o.MinMS, 'f', -1, 64))
	}
	if o.Since > 0 {
		q.Set("since", strconv.FormatInt(o.Since, 10))
	}
	if o.Cursor > 0 {
		q.Set("cursor", strconv.FormatInt(o.Cursor, 10))
	}
	if o.Limit > 0 {
		q.Set("limit", strconv.Itoa(o.Limit))
	}
	if o.Fleet {
		q.Set("fleet", "1")
	}
	var page api.TracePage
	err := c.do(ctx, http.MethodGet, "/v1/traces", q, nil, &page)
	return page, err
}

// SLO fetches the burn-rate state of every configured SLO objective.
// Daemons running without objectives answer ErrNotFound.
func (c *Client) SLO(ctx context.Context) (api.SLOView, error) {
	var v api.SLOView
	err := c.do(ctx, http.MethodGet, "/v1/slo", nil, nil, &v)
	return v, err
}

// Profiles lists the continuous profiler's on-disk capture ring. The
// profiler serves on the daemon's private pprof listener, not the API
// address — build this client against the -pprof-listen base URL.
func (c *Client) Profiles(ctx context.Context) (api.ProfileList, error) {
	var list api.ProfileList
	err := c.doUnversioned(ctx, "/profiles", &list)
	return list, err
}
