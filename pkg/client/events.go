package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"asyncmediator/api"
)

// StreamOptions filter an event subscription.
type StreamOptions struct {
	// Session narrows the stream to one session id ("" for all).
	Session string
	// Kind narrows to one namespace: api.KindSession or
	// api.KindExperiment ("" for both).
	Kind string
}

// EventStream is one live GET /v1/events subscription. Read with Next;
// Close releases the connection (cancelling the stream's context does
// too).
type EventStream struct {
	body  io.ReadCloser
	sc    *bufio.Scanner
	hello api.Hello
}

// StreamEvents subscribes to the farm's event bus as server-sent events.
// The returned stream has already consumed the hello frame, so the bus
// position is known before the first Next: every transition published
// after Hello().Seq will be delivered (modulo overflow, detectable as a
// seq gap).
func (c *Client) StreamEvents(ctx context.Context, o StreamOptions) (*EventStream, error) {
	q := url.Values{}
	if o.Session != "" {
		q.Set("session", o.Session)
	}
	if o.Kind != "" {
		q.Set("kind", o.Kind)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint("/v1/events", q), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.RequestIDHeader, c.nextRequestID())
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: subscribe events: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20) // terminal events carry full snapshots
	s := &EventStream{body: resp.Body, sc: sc}
	name, data, err := s.nextFrame()
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("client: event stream opened without hello: %w", err)
	}
	if name != api.EventNameHello || json.Unmarshal(data, &s.hello) != nil {
		s.Close()
		return nil, fmt.Errorf("client: unexpected first frame %q", name)
	}
	return s, nil
}

// Hello returns the stream's opening frame: the bus sequence number at
// subscription time.
func (s *EventStream) Hello() api.Hello { return s.hello }

// Next blocks for the next event. It returns io.EOF when the server
// closes the stream (farm shutdown) and the context's error when the
// subscription's context ends.
func (s *EventStream) Next() (api.Event, error) {
	name, data, err := s.nextFrame()
	if err != nil {
		return api.Event{}, err
	}
	var e api.Event
	if err := json.Unmarshal(data, &e); err != nil {
		return api.Event{}, fmt.Errorf("client: bad %s event payload: %w", name, err)
	}
	return e, nil
}

// nextFrame scans one SSE frame (event name + data), skipping heartbeat
// comments.
func (s *EventStream) nextFrame() (name string, data []byte, err error) {
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && name != "":
			return name, data, nil
		}
	}
	if err := s.sc.Err(); err != nil {
		return "", nil, err
	}
	return "", nil, io.EOF
}

// Close releases the subscription's connection. Idempotent.
func (s *EventStream) Close() error { return s.body.Close() }
