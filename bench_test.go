// Top-level benchmarks: one per experiment in DESIGN.md's index. Each
// bench regenerates (a slice of) the corresponding table's workload; the
// experiment tables themselves are printed by cmd/mediatorsim and recorded
// in EXPERIMENTS.md.
package main

import (
	"fmt"
	"testing"

	"asyncmediator/internal/core"
	"asyncmediator/internal/game"
	"asyncmediator/internal/mediator"
	"asyncmediator/internal/service"
	"asyncmediator/internal/sim"
)

func benchParams(b *testing.B, n, k, t int, v core.Variant) core.Params {
	b.Helper()
	p, err := core.Section64Params(n, k, t, v)
	if err != nil {
		b.Fatal(err)
	}
	p.CoinSeed = 31
	return p
}

// benchCheapTalk measures one full cheap-talk run per iteration and
// reports messages per run.
func benchCheapTalk(b *testing.B, n, k, t int, v core.Variant) {
	b.Helper()
	p := benchParams(b, n, k, t, v)
	types := make([]game.Type, n)
	totalMsgs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := core.Run(core.RunConfig{
			Params: p, Types: types, Seed: int64(i), MaxSteps: 50_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		totalMsgs += res.Stats.MessagesSent
	}
	b.ReportMetric(float64(totalMsgs)/float64(b.N), "msgs/run")
}

// BenchmarkE1_Theorem41 exercises the exact-implementation protocol at its
// bound n = 4k+4t+1.
func BenchmarkE1_Theorem41(b *testing.B) {
	for _, kt := range [][2]int{{1, 0}, {0, 1}} {
		k, t := kt[0], kt[1]
		n := core.Exact41.Bound(k, t)
		b.Run(fmt.Sprintf("k=%d,t=%d,n=%d", k, t, n), func(b *testing.B) {
			benchCheapTalk(b, n, k, t, core.Exact41)
		})
	}
}

// BenchmarkE2_Theorem42 exercises the epsilon protocol at n = 3k+3t+1.
func BenchmarkE2_Theorem42(b *testing.B) {
	for _, kt := range [][2]int{{1, 0}, {0, 1}} {
		k, t := kt[0], kt[1]
		n := core.Epsilon42.Bound(k, t)
		b.Run(fmt.Sprintf("k=%d,t=%d,n=%d", k, t, n), func(b *testing.B) {
			benchCheapTalk(b, n, k, t, core.Epsilon42)
		})
	}
}

// BenchmarkE3_Theorem44 exercises the punishment protocol at n = 3k+4t+1.
func BenchmarkE3_Theorem44(b *testing.B) {
	for _, kt := range [][2]int{{1, 0}, {1, 1}} {
		k, t := kt[0], kt[1]
		n := core.Punish44.Bound(k, t)
		b.Run(fmt.Sprintf("k=%d,t=%d,n=%d", k, t, n), func(b *testing.B) {
			benchCheapTalk(b, n, k, t, core.Punish44)
		})
	}
}

// BenchmarkE4_Theorem45 exercises the epsilon+punishment protocol at
// n = 2k+3t+1. (k=1,t=0 is excluded: its bound n=3 cannot host the
// Section 6.4 game, which needs n > 3k.)
func BenchmarkE4_Theorem45(b *testing.B) {
	for _, kt := range [][2]int{{0, 1}, {1, 1}} {
		k, t := kt[0], kt[1]
		n := core.Punish45.Bound(k, t)
		b.Run(fmt.Sprintf("k=%d,t=%d,n=%d", k, t, n), func(b *testing.B) {
			benchCheapTalk(b, n, k, t, core.Punish45)
		})
	}
}

// BenchmarkE5_MessageComplexity sweeps n at fixed circuit (the O(n...)
// axis) and the mediator-game round count (the O(N) axis).
func BenchmarkE5_MessageComplexity(b *testing.B) {
	for _, n := range []int{4, 5, 6, 7} {
		b.Run(fmt.Sprintf("cheaptalk-n=%d", n), func(b *testing.B) {
			benchCheapTalk(b, n, 1, 0, core.Epsilon42)
		})
	}
	g, err := game.Section64Game(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	circ, err := mediator.Section64Circuit(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, rounds := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("mediator-R=%d", rounds), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				_, res, err := mediator.Run(mediator.Config{
					Game: g, Circuit: circ, Types: make([]game.Type, 4),
					Approach: game.ApproachAH, Rounds: rounds, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs += res.Stats.MessagesSent
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/run")
		})
	}
}

// BenchmarkE6_PunishmentCounterexample regenerates the Section 6.4 table.
func BenchmarkE6_PunishmentCounterexample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := sim.Options{Trials: 25, Seed0: int64(i*1000 + 1), MaxSteps: 30_000_000}
		if _, err := sim.E6(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_SyncVsAsync compares the synchronous baseline (R1's regime,
// n > 3k+3t) against the asynchronous protocol at the same n.
func BenchmarkE7_SyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := sim.Options{Trials: 6, Seed0: int64(i + 1), MaxSteps: 30_000_000}
		if _, err := sim.E7(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_Substrates regenerates the substrate ablation.
func BenchmarkE8_Substrates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := sim.Options{Trials: 1, Seed0: int64(i + 1), MaxSteps: 30_000_000}
		if _, err := sim.E8(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSweep measures the sharded experiment engine: one E1
// sweep (the paper's workhorse grid — honest plays plus two deviations at
// each parameter point) per iteration, at increasing worker counts. The
// tables are byte-identical across the sub-benchmarks; only the wall
// clock moves. This is the measurement behind the "≥2x at 4 workers"
// acceptance line — compare the workers=1 and workers=4 ns/op.
func BenchmarkExperimentSweep(b *testing.B) {
	o := sim.Options{Trials: 16, Seed0: 1, MaxSteps: 30_000_000}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := sim.NewEngine(workers)
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := eng.Sweep([]string{"e1"}, o)
				if err != nil {
					b.Fatal(err)
				}
				for _, tab := range rep.Tables {
					if len(tab.Errors) > 0 {
						b.Fatalf("cell errors: %+v", tab.Errors)
					}
				}
			}
		})
	}
}

// BenchmarkServiceThroughput measures the session farm (internal/service):
// b.N plays pushed through the bounded worker pool, reported as
// sessions/sec and msgs/sec. This is the serving-layer number of the perf
// trajectory — how many concurrent mediator-free plays one process hosts.
// The "persist" variants run the same workload with the durable store
// (WAL + eviction) enabled; the acceptance line is a < 15% sessions/sec
// regression against the matching in-memory case.
func BenchmarkServiceThroughput(b *testing.B) {
	cases := []struct {
		name    string
		spec    service.Spec
		persist bool
		notrace bool
	}{
		// The default serving configuration: Theorem 4.1's n > 4t with
		// k=0, t=1 (the asynchronous service-free regime).
		{"default-n=5,t=1", service.Spec{}, false, false},
		{"default-n=5,t=1-persist", service.Spec{}, true, false},
		// The untraced baseline: same workload with per-play trace
		// collection off. The acceptance line is tracing overhead <= 5%
		// sessions/sec against the traced default case.
		{"default-n=5,t=1-notrace", service.Spec{}, false, true},
		// The cheapest hosted play: Theorem 4.2 at its bound n=4.
		{"epsilon-n=4,k=1", service.Spec{N: 4, K: 1, T: 0, Variant: "4.2"}, false, false},
		{"epsilon-n=4,k=1-persist", service.Spec{N: 4, K: 1, T: 0, Variant: "4.2"}, true, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := service.BenchConfig{Sessions: b.N, Spec: c.spec, DisableTracing: c.notrace}
			if c.persist {
				cfg.DataDir = b.TempDir()
				cfg.MaxLiveSessions = 256
			}
			res, err := service.Bench(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > 0 {
				b.Fatalf("%d sessions failed", res.Failed)
			}
			b.ReportMetric(res.SessionsPerSec, "sessions/sec")
			b.ReportMetric(res.MessagesPerSec, "msgs/sec")
			b.ReportMetric(res.MeanMsgsPerPlay, "msgs/play")
		})
	}
}
